"""Candidate-pair verification.

Verification computes the exact overlap of two globally-ordered token
lists by merging them, with two early exits:

* success — once the running overlap reaches the required ``α``
  the pair is known to qualify even before the merge finishes, but we
  keep merging to report the exact similarity (the paper outputs the
  similarity value with each RID pair);
* failure — if even matching the entire remainder of the shorter list
  cannot reach ``α``, abort.

Both sides must be sorted under the *same* total order; any consistent
order works, so verification sorts by token text when called with
unsorted sets.  The merge is element-type generic: rank-encoded
``array('i')`` / ``tuple[int]`` (integer compares, the fast path) and
lexicographically sorted ``tuple[str]`` behave identically.

The batch-columnar layer (:mod:`repro.core.batch`) replaces the
per-pair Python merge with one C-level set intersection per pair
(:func:`intersection_size`).  Because :func:`overlap` early-aborts
*only* when the result is provably below ``required`` and is exact
otherwise, any consumer that compares the result against ``required``
and then derives a similarity behaves bit-for-bit identically with the
exact cardinality — which is how the batch kernels stay a drop-in
replacement for this module.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.similarity import SimilarityFunction


def overlap(x: Sequence, y: Sequence, required: int = 1) -> int:
    """Exact overlap of two same-order-sorted token sequences.

    Returns the true ``|x ∩ y|``; short-circuits to the partial count
    as soon as the bound proves ``required`` is unreachable (the result
    is then guaranteed to be ``< required``).
    """
    i = j = count = 0
    nx, ny = len(x), len(y)
    while i < nx and j < ny:
        remaining = min(nx - i, ny - j)
        if count + remaining < required:
            return count
        if x[i] == y[j]:
            count += 1
            i += 1
            j += 1
        elif x[i] < y[j]:
            i += 1
        else:
            j += 1
    return count


def intersection_size(x: Sequence, y: Sequence) -> int:
    """Exact ``|x ∩ y|`` via one C-level set intersection.

    Token sequences are duplicate-free (tokenizer contract), so this
    equals the merge-based :func:`overlap` with ``required=1`` — but
    without the per-element Python loop.  The batch kernels use it
    (via cached frozensets) wherever :func:`overlap`'s early abort
    cannot change the outcome.
    """
    return len(frozenset(x) & frozenset(y))


def verify_pair(
    x: Sequence,
    y: Sequence,
    sim: SimilarityFunction,
    threshold: float,
    presorted: bool = False,
) -> float | None:
    """Verify one candidate pair.

    Returns the exact similarity if ``sim(x, y) >= threshold``, else
    ``None``.  With ``presorted=True`` the inputs are trusted to share
    a total order; otherwise they are sorted lexicographically first.
    """
    nx, ny = len(x), len(y)
    if nx == 0 or ny == 0:
        return None
    if not presorted:
        x = sorted(x)
        y = sorted(y)
    alpha = sim.overlap_threshold(nx, ny, threshold)
    common = overlap(x, y, required=alpha)
    if common < alpha or not sim.accepts_overlap(nx, ny, common, threshold):
        return None
    return sim.similarity_from_overlap(nx, ny, common)
