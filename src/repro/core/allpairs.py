"""All-Pairs baseline (Bayardo, Ma, Srikant — WWW'07).

All-Pairs is the prefix-filter + length-filter ancestor of PPJoin: it
indexes prefix tokens, accumulates candidate overlaps and verifies,
without the positional or suffix filters.  The paper cites it as one
of the interchangeable Stage-2 kernels; we keep it as an ablation
baseline for the kernel micro-benchmarks.

Implementation note: with positional and suffix filters disabled,
:class:`repro.core.ppjoin.PPJoinIndex` *is* All-Pairs (same index
structure, same verification), so this module is a thin configuration
wrapper rather than a re-implementation — one code path, tested once.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.ppjoin import ppjoin_rs_join, ppjoin_self_join
from repro.core.prefixes import Projection
from repro.core.similarity import SimilarityFunction


def allpairs_self_join(
    projections: Iterable[Projection],
    sim: SimilarityFunction,
    threshold: float,
) -> list[tuple[int, int, float]]:
    """All-Pairs self-join: prefix + length filters only."""
    return ppjoin_self_join(
        projections, sim, threshold, use_positional=False, use_suffix=False
    )


def allpairs_rs_join(
    r_projections: Iterable[Projection],
    s_projections: Iterable[Projection],
    sim: SimilarityFunction,
    threshold: float,
) -> list[tuple[int, int, float]]:
    """All-Pairs R-S join: prefix + length filters only."""
    return ppjoin_rs_join(
        r_projections, s_projections, sim, threshold,
        use_positional=False, use_suffix=False,
    )
