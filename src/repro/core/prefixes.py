"""Record projections, prefixes and routing keys (Stage 2 plumbing).

Stage 2 operates on *record projections* — (RID, ordered join-attribute
tokens) — and replicates each projection under one routing key per
prefix token (individual-token routing) or per distinct prefix-token
*group* (grouped-token routing, Section 3.2 "Using Grouped Tokens").

Token groups are assigned in round-robin order over the global
(ascending-frequency) token ordering, which balances the sum of token
frequencies across groups as described in the paper.  ``num_groups``
equal to the dictionary size degenerates to one group per token — the
setting the evaluation found best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.ordering import TokenOrder
from repro.core.similarity import SimilarityFunction


@dataclass(frozen=True, slots=True)
class Projection:
    """A record projected on its RID and globally-ordered token array.

    ``tokens`` are normally global token *ranks* sorted ascending (see
    :meth:`repro.core.ordering.TokenOrder.encode` /
    :meth:`~repro.core.ordering.TokenOrder.encode_array`), so ascending
    numeric order is the global frequency order and ``len(tokens)`` is
    the set size used by all filters.  Any sequence sorted under a
    consistent total order works — the kernels only slice, measure and
    compare, so ``tuple[int]``, ``array('i')`` and lexicographically
    sorted ``tuple[str]`` (see
    :meth:`~repro.core.ordering.TokenOrder.encode_strings`) are all
    valid and produce identical RID pairs.

    ``signature`` optionally carries the record's bitmap signature
    (:func:`repro.core.bitmaps.signature`), computed once and consulted
    by the kernels' bitmap filter; ``None`` lets the kernel compute (or
    skip) it as configured.
    """

    rid: int
    tokens: Sequence[int] | Sequence[str]
    signature: int | None = None

    @property
    def size(self) -> int:
        return len(self.tokens)


def probe_prefix(
    tokens: Sequence,
    sim: SimilarityFunction,
    threshold: float,
) -> tuple:
    """The probing prefix of a globally-ordered token array."""
    return tuple(tokens[: sim.prefix_length(len(tokens), threshold)])


def index_prefix(
    tokens: Sequence,
    sim: SimilarityFunction,
    threshold: float,
) -> tuple:
    """The (mid-)prefix sufficient for the indexed side of a
    length-ascending self-join."""
    return tuple(tokens[: sim.index_prefix_length(len(tokens), threshold)])


class TokenGrouping:
    """Round-robin assignment of tokens to ``num_groups`` groups.

    Token with global rank ``r`` lands in group ``r % num_groups``;
    tokens unknown to the order land in the group of the virtual rank
    ``len(order)``.  With one group per token the group id *is* the
    token rank.
    """

    def __init__(self, order: TokenOrder, num_groups: int) -> None:
        if num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {num_groups}")
        self._order = order
        self.num_groups = num_groups

    @classmethod
    def one_group_per_token(cls, order: TokenOrder) -> "TokenGrouping":
        """The paper's best-performing configuration."""
        return cls(order, max(1, len(order)))

    def group_of(self, token: str) -> int:
        """Group id of a token given by name."""
        return self._order.rank(token) % self.num_groups

    def group_of_rank(self, rank: int) -> int:
        """Group id of a rank-encoded token."""
        return rank % self.num_groups

    def groups_of_ranks(self, ranks: Iterable[int]) -> list[int]:
        """Distinct group ids of rank-encoded *ranks*, in first-seen order."""
        seen: list[int] = []
        for rank in ranks:
            group = rank % self.num_groups
            if group not in seen:
                seen.append(group)
        return seen

    def groups_of_tokens(self, tokens: Iterable[str]) -> list[int]:
        """Distinct group ids of string *tokens*, in first-seen order —
        the ``token_encoding="string"`` counterpart of
        :meth:`groups_of_ranks` (group assignment still follows the
        token's frequency rank)."""
        seen: list[int] = []
        for token in tokens:
            group = self._order.rank(token) % self.num_groups
            if group not in seen:
                seen.append(group)
        return seen
