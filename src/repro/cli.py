"""Command-line interface.

Runs end-to-end set-similarity joins over record files from the shell::

    python -m repro selfjoin catalog.tsv -o pairs.tsv --threshold 0.8
    python -m repro rsjoin dblp.tsv citeseerx.tsv -o linked.tsv --kernel bk
    python -m repro generate dblp 5000 -o catalog.tsv --increase 5

Input files hold one record per line: tab-separated fields with an
integer RID first (see ``repro.join.records``).  Output lines are
``similarity<TAB>rid1<TAB>rid2`` (add ``--full-records`` for the
complete joined record pair).
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING

from repro.data.increase import increase_dataset
from repro.data.loaders import read_records, write_records
from repro.data.synthetic import generate_citeseerx, generate_dblp, generate_skewed
from repro.join.blocks import BlockPolicy
from repro.join.config import JoinConfig
from repro.join.driver import JoinReport, ssjoin_rs, ssjoin_self
from repro.join.records import FIELD_SEP, RecordSchema, rid_of
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.dfs import InMemoryDFS

if TYPE_CHECKING:
    from repro.analysis.common import Finding


def _add_join_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-o", "--output", required=True, help="output file")
    parser.add_argument("--similarity", default="jaccard",
                        choices=["jaccard", "cosine", "dice", "overlap"])
    parser.add_argument("--threshold", type=float, default=0.8)
    parser.add_argument("--stage1", default="bto", choices=["bto", "opto"])
    parser.add_argument("--kernel", default="pk", choices=["bk", "pk"])
    parser.add_argument("--stage3", default="brj", choices=["brj", "oprj"])
    parser.add_argument("--routing", default="individual",
                        choices=["individual", "grouped"])
    parser.add_argument("--num-groups", type=int, default=None,
                        help="token groups for --routing grouped")
    parser.add_argument("--adaptive", action="store_true",
                        help="skew-adaptive planning: sample the input, "
                             "choose routing/num-groups/batch-size from a "
                             "cost model, and split hot Stage-2 token "
                             "groups across reducers; output is identical "
                             "to the static plan")
    parser.add_argument("--split-threshold", type=float, default=2.0,
                        metavar="X",
                        help="with --adaptive, split a token group whose "
                             "estimated reduce load exceeds X times the "
                             "mean per-reducer load (default: 2.0)")
    parser.add_argument("--split-factor", type=int, default=4, metavar="K",
                        help="with --adaptive, shard each hot group "
                             "across up to K reducer partitions "
                             "(default: 4)")
    parser.add_argument("--join-fields", default="1,2",
                        help="comma-separated 1-based field indexes forming "
                             "the join attribute (default: 1,2)")
    parser.add_argument("--nodes", type=int, default=10,
                        help="simulated cluster size")
    parser.add_argument("--blocks", type=int, default=None,
                        help="enable Section-5 reduce-based block processing "
                             "with this many blocks (BK kernel only)")
    parser.add_argument("--full-records", action="store_true",
                        help="emit complete record pairs instead of RID pairs")
    parser.add_argument("--stats", action="store_true",
                        help="print per-stage simulated times to stderr")
    parser.add_argument("--parallel", type=int, metavar="WORKERS", default=None,
                        help="run map/reduce tasks on this many worker processes "
                             "(persistent pool, one fork per join)")
    parser.add_argument("--token-encoding", default="rank",
                        choices=["rank", "string"],
                        help="kernel token representation: frequency-rank "
                             "array('i') (default) or sorted string tuples")
    parser.add_argument("--no-bitmap-filter", action="store_true",
                        help="disable bitmap-signature candidate pruning "
                             "(on by default; output is identical either way)")
    parser.add_argument("--bitmap-width", type=int, default=64,
                        help="bitmap signature width in bits (default: 64)")
    parser.add_argument("--batch-size", type=int, default=64, metavar="N",
                        help="columnar batch size for the Stage-2 kernels "
                             "(default: 64); 0 selects the scalar "
                             "pair-at-a-time path — output is identical "
                             "either way")
    parser.add_argument("--shuffle-transport", default="shm",
                        choices=["shm", "disk"],
                        help="intermediate-data transport of --parallel runs: "
                             "zero-copy shared-memory segments (default) or "
                             "disk spill files; shm falls back to disk "
                             "automatically when /dev/shm is unavailable; "
                             "output is byte-identical either way")
    parser.add_argument("--dfs-dir", default=None, metavar="PATH",
                        help="back the DFS with this directory instead of RAM")
    parser.add_argument("--sanitize", action="store_true",
                        help="runtime sanitizer mode: check shuffle sortedness, "
                             "filter admissibility (sampled oracle) and index "
                             "byte accounting; output is unchanged, counters "
                             "appear under --stats (also: REPRO_SANITIZE=1)")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        metavar="MB",
                        help="per-task memory budget for plan-time admission: "
                             "estimate Stage-2 reducer footprints from the "
                             "prefix sample and pre-select routing, Section-5 "
                             "blocks and batch size to fit; pairs are "
                             "identical with or without a budget")
    parser.add_argument("--no-auto-degrade", action="store_true",
                        help="fail fast on Stage-2 memory exhaustion instead "
                             "of degrading the plan down the escalation "
                             "ladder (finer routing -> BK kernel -> blocks -> "
                             "scalar) and re-running the stage")
    parser.add_argument("--max-replan-retries", type=int, default=6,
                        metavar="N",
                        help="escalation-ladder rungs allowed before a "
                             "Stage-2 memory error is re-raised (default: 6)")
    parser.add_argument("--rss-cap-mb", type=int, default=None, metavar="MB",
                        help="soft real-memory watchdog: when worker-reported "
                             "maxrss crosses this cap, raise the simulated "
                             "memory signal so the degradation ladder engages "
                             "before the OS OOM killer would")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record a span timeline of the whole join and "
                             "write it as Chrome trace-event JSON (open in "
                             "Perfetto; analyze with 'repro trace-report'); "
                             "observe-only, output is unchanged")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault injection: a plan file "
                             "(JSON) or inline spec list like "
                             "'crash:*:map:1:0;sleep:*:reduce:0:0:0.3' "
                             "(kind:job:phase:task:attempt[:sleep_s|cap_mb]); "
                             "absorbable plans leave the output bit-identical; "
                             "'squeeze' lowers the simulated memory budget to "
                             "cap_mb MB and is absorbed by the degradation "
                             "ladder, not by task retries")
    parser.add_argument("--max-task-retries", type=int, default=None,
                        metavar="N",
                        help="attempts allowed per task before the join "
                             "fails (default: 4)")
    parser.add_argument("--speculate-after", type=float, default=None,
                        metavar="SECONDS",
                        help="launch a speculative duplicate attempt for "
                             "tasks still running after this long "
                             "(default: off; first completed attempt wins)")
    parser.add_argument("--progress", action="store_true",
                        help="live progress on stderr: per-phase bars, "
                             "throughput-based ETA and straggler flags fed "
                             "by worker heartbeats; degrades to plain "
                             "'progress:' log lines when stderr is not a "
                             "TTY; observe-only, output is unchanged")
    parser.add_argument("--runs-dir", default=None, metavar="DIR",
                        help="run-manifest registry directory (default: "
                             "$REPRO_RUNS_DIR or .repro-runs)")
    parser.add_argument("--no-run-manifest", action="store_true",
                        help="do not record this run in the registry")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="persist each completed stage's output (plus an "
                             "identity manifest) under DIR so a killed join "
                             "can be resumed with --resume DIR")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="resume a checkpointed join from DIR: restore "
                             "completed stages and re-run only the rest; "
                             "refuses if the config or inputs changed")


def _build_config(args: argparse.Namespace) -> JoinConfig:
    fields = tuple(int(f) for f in args.join_fields.split(",") if f)
    blocks = None
    if args.blocks is not None:
        blocks = BlockPolicy("reduce", num_blocks=args.blocks)
    return JoinConfig(
        similarity=args.similarity,
        threshold=args.threshold,
        schema=RecordSchema(fields),
        stage1=args.stage1,
        kernel=args.kernel,
        routing=args.routing,
        num_groups=args.num_groups,
        stage3=args.stage3,
        blocks=blocks,
        token_encoding=args.token_encoding,
        bitmap_filter=not args.no_bitmap_filter,
        bitmap_width=args.bitmap_width,
        batch_size=args.batch_size or None,
        shuffle_transport=args.shuffle_transport,
        sanitize=args.sanitize,
        adaptive=args.adaptive,
        split_threshold=args.split_threshold,
        split_factor=args.split_factor,
        memory_budget_mb=args.memory_budget_mb,
        auto_degrade=not args.no_auto_degrade,
        max_replan_retries=args.max_replan_retries,
    )


def _fault_options(args: argparse.Namespace) -> dict:
    """``fault_plan``/``retry_policy`` kwargs shared by every engine."""
    from repro.mapreduce.faults import DEFAULT_RETRY_POLICY, FaultPlan

    fault_plan = FaultPlan.load(args.faults) if args.faults else None
    retry_policy = None
    if args.max_task_retries is not None or args.speculate_after is not None:
        import dataclasses

        changes: dict = {}
        if args.max_task_retries is not None:
            changes["max_attempts"] = args.max_task_retries
        if args.speculate_after is not None:
            changes["speculative_after_s"] = args.speculate_after
        retry_policy = dataclasses.replace(DEFAULT_RETRY_POLICY, **changes)
    return {"fault_plan": fault_plan, "retry_policy": retry_policy}


def _make_cluster(args: argparse.Namespace) -> SimulatedCluster:
    num_nodes = args.nodes
    if args.dfs_dir is not None:
        from repro.mapreduce.diskdfs import LocalDiskDFS

        dfs = LocalDiskDFS(args.dfs_dir, num_nodes=num_nodes)
    else:
        dfs = InMemoryDFS(num_nodes=num_nodes)
    faults = _fault_options(args)
    if args.parallel is not None:
        from repro.mapreduce.executor import PersistentParallelCluster

        return PersistentParallelCluster(
            ClusterConfig(num_nodes=num_nodes), dfs, workers=args.parallel,
            transport=args.shuffle_transport, **faults,
        )
    return SimulatedCluster(ClusterConfig(num_nodes=num_nodes), dfs, **faults)


def _make_checkpoint(args: argparse.Namespace):
    """A :class:`JoinCheckpoint` for ``--checkpoint``/``--resume``."""
    if args.resume is not None:
        from repro.join.checkpoint import JoinCheckpoint

        return JoinCheckpoint(args.resume, resume=True)
    if args.checkpoint is not None:
        from repro.join.checkpoint import JoinCheckpoint

        return JoinCheckpoint(args.checkpoint, resume=False)
    return None


def _attach_tracer(args: argparse.Namespace, cluster: SimulatedCluster):
    """Attach a Tracer to *cluster* when ``--trace`` was given."""
    if args.trace is None:
        return None
    from repro.obs.trace import Tracer

    cluster.tracer = Tracer()
    return cluster.tracer


def _export_trace(args: argparse.Namespace, tracer) -> None:
    if tracer is None:
        return
    tracer.export(args.trace)
    print(f"trace ({len(tracer)} events) -> {args.trace}", file=sys.stderr)


def _attach_telemetry(args: argparse.Namespace, cluster: SimulatedCluster, tracer):
    """Attach a TelemetryHub to *cluster* for ``--progress`` and/or the
    ``--rss-cap-mb`` real-memory watchdog."""
    rss_cap_mb = getattr(args, "rss_cap_mb", None)
    if not args.progress and rss_cap_mb is None:
        return None
    from repro.obs.telemetry import TelemetryHub, make_progress_view

    view = make_progress_view(stream=sys.stderr) if args.progress else None
    cluster.telemetry = TelemetryHub(
        view=view,
        tracer=tracer,
        rss_cap_kb=rss_cap_mb * 1024 if rss_cap_mb is not None else None,
    )
    return cluster.telemetry


def _record_run(
    args: argparse.Namespace, kind: str, workload: str, report: JoinReport
) -> None:
    """Write the run manifest unless ``--no-run-manifest``."""
    if args.no_run_manifest:
        return
    from repro.obs.runs import (
        build_run_manifest,
        resolve_runs_dir,
        write_run_manifest,
    )

    doc = build_run_manifest(
        kind=kind,
        workload=workload,
        config=_build_config(args),
        report=report,
        argv=sys.argv[1:],
    )
    path = write_run_manifest(resolve_runs_dir(args.runs_dir), doc)
    print(f"run {doc['id']} -> {path}", file=sys.stderr)


def _emit(args: argparse.Namespace, pairs: list, report: JoinReport) -> None:
    lines = []
    for line1, line2, similarity in pairs:
        if args.full_records:
            lines.append(f"{similarity:.6f}{FIELD_SEP}{line1}{FIELD_SEP}{line2}")
        else:
            lines.append(
                f"{similarity:.6f}{FIELD_SEP}{rid_of(line1)}{FIELD_SEP}{rid_of(line2)}"
            )
    write_records(args.output, lines)
    print(f"{len(pairs)} pairs -> {args.output}", file=sys.stderr)
    counters = report.counters()
    if counters.get("fault.injected") or counters.get("task.retries"):
        print(
            "  faults: "
            f"injected={counters.get('fault.injected', 0)}, "
            f"retries={counters.get('task.retries', 0)}, "
            f"speculative={counters.get('task.speculative', 0)}, "
            f"lost={counters.get('task.lost', 0)}",
            file=sys.stderr,
        )
    if counters.get("resume.stages_skipped"):
        print(
            f"  resume: stages_skipped={counters['resume.stages_skipped']}",
            file=sys.stderr,
        )
    if counters.get("memory.replans"):
        steps = " -> ".join(report.memory_steps) or "replayed"
        print(
            f"  memory: replans={counters['memory.replans']}, "
            f"steps: {steps}",
            file=sys.stderr,
        )
    if args.stats:
        for stage, seconds in report.stage_times().items():
            print(f"  {stage}: {seconds:.1f}s (simulated, "
                  f"{args.nodes} nodes)", file=sys.stderr)
        from repro.bench.reporting import (
            format_executor_summary,
            format_filter_counters,
            format_plan_counters,
        )

        plan_line = format_plan_counters(counters)
        if plan_line:
            print(plan_line, file=sys.stderr)
        print(format_filter_counters(report.filter_counters()), file=sys.stderr)
        summary = report.executor_summary()
        if summary.get("pooled_phases") or summary.get("inline_phases"):
            print(format_executor_summary(summary), file=sys.stderr)
        from repro.bench.reporting import format_histograms

        histograms = report.metrics().histograms()
        if histograms:
            print(format_histograms(histograms), file=sys.stderr)


def _cmd_selfjoin(args: argparse.Namespace) -> int:
    records = read_records(args.input)
    cluster = _make_cluster(args)
    tracer = _attach_tracer(args, cluster)
    hub = _attach_telemetry(args, cluster, tracer)
    try:
        cluster.dfs.write("input", records)
        report = ssjoin_self(
            cluster, "input", _build_config(args),
            checkpoint=_make_checkpoint(args),
        )
        if hub is not None:
            hub.close()
            print(hub.summary_line(), file=sys.stderr)
        _emit(args, sorted(cluster.dfs.read_all(report.output_file)), report)
        _export_trace(args, tracer)
        _record_run(args, "selfjoin", args.input, report)
    finally:
        if hasattr(cluster, "close"):
            cluster.close()
    return 0


def _cmd_rsjoin(args: argparse.Namespace) -> int:
    r_records = read_records(args.r_input)
    s_records = read_records(args.s_input)
    cluster = _make_cluster(args)
    tracer = _attach_tracer(args, cluster)
    hub = _attach_telemetry(args, cluster, tracer)
    try:
        cluster.dfs.write("r", r_records)
        cluster.dfs.write("s", s_records)
        report = ssjoin_rs(
            cluster, "r", "s", _build_config(args),
            checkpoint=_make_checkpoint(args),
        )
        if hub is not None:
            hub.close()
            print(hub.summary_line(), file=sys.stderr)
        _emit(args, sorted(cluster.dfs.read_all(report.output_file)), report)
        _export_trace(args, tracer)
        _record_run(args, "rsjoin", f"{args.r_input},{args.s_input}", report)
    finally:
        if hasattr(cluster, "close"):
            cluster.close()
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        digest_trace,
        format_routing_comparison,
        format_trace_report,
        load_trace,
        validate_trace,
    )

    digests = []
    status = 0
    for path in args.traces:
        doc = load_trace(path)
        problems = validate_trace(doc)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
            if args.validate_only:
                continue
        digests.append(digest_trace(doc, path=path))
    if args.validate_only:
        if status == 0:
            print(f"{len(args.traces)} trace file(s) valid", file=sys.stderr)
        return status
    for digest in digests:
        print(format_trace_report(digest))
    if len(digests) > 1:
        print(format_routing_comparison(digests))
    return status


def _emit_findings(
    findings: list[Finding], fmt: str, rules: dict[str, str], tool: str
) -> int:
    """Render findings in *fmt* and return the process exit status."""
    from repro.analysis.reporting import render_findings

    output = render_findings(findings, fmt, rules, tool)
    if output:
        print(output)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"{tool}: clean", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.mrlint import RULES, lint_paths

    findings = lint_paths(args.paths)
    rules = dict(RULES)
    tool = "mrlint"
    if args.flow:
        from repro.analysis.mrflow import FLOW_RULES, analyze_paths

        findings = sorted(
            [*findings, *analyze_paths(args.paths)],
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )
        rules.update(FLOW_RULES)
        tool = "mrlint+mrflow"
    return _emit_findings(findings, args.format, rules, tool)


def _cmd_flow(args: argparse.Namespace) -> int:
    from repro.analysis import counter_names
    from repro.analysis.mrflow import (
        FLOW_RULES,
        analyze_paths,
        build_counter_registry,
        render_counter_registry,
    )
    from repro.analysis.reporting import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    if args.write_counter_registry or args.check_registry:
        registry = build_counter_registry(args.paths)
        rendered = render_counter_registry(registry)
        registry_path = counter_names.__file__
        if args.write_counter_registry:
            with open(registry_path, "w", encoding="utf-8") as handle:
                handle.write(rendered)
            print(
                f"{len(registry)} counter name(s) -> {registry_path}",
                file=sys.stderr,
            )
            return 0
        with open(registry_path, "r", encoding="utf-8") as handle:
            committed = handle.read()
        if committed != rendered:
            print(
                "counter registry is stale: regenerate with "
                "'python -m repro flow --write-counter-registry'",
                file=sys.stderr,
            )
            missing = registry - counter_names.KNOWN_COUNTER_NAMES
            extra = counter_names.KNOWN_COUNTER_NAMES - registry
            for name in sorted(missing):
                print(f"  + {name}", file=sys.stderr)
            for name in sorted(extra):
                print(f"  - {name}", file=sys.stderr)
            return 1
        print("counter registry is in sync", file=sys.stderr)
        return 0

    findings = analyze_paths(args.paths)
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"{len(findings)} finding(s) -> baseline {args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        baseline = load_baseline(args.baseline)
        findings, stale = apply_baseline(findings, baseline)
        for entry in stale:
            print(f"stale baseline entry: {entry}", file=sys.stderr)
    return _emit_findings(findings, args.format, dict(FLOW_RULES), "mrflow")


def _runs_dir(args: argparse.Namespace) -> str:
    from repro.obs.runs import resolve_runs_dir

    return resolve_runs_dir(args.runs_dir)


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.obs.runs import list_runs

    runs = list_runs(_runs_dir(args))
    if not runs:
        print(f"no runs recorded under {_runs_dir(args)!r}", file=sys.stderr)
        return 0
    rows = [
        [
            doc.get("id", "?"),
            doc.get("kind", "?"),
            doc.get("workload", "?"),
            doc.get("combo", "-"),
            doc.get("pairs", "-"),
            doc.get("stage_times_s", {}).get("total", "-"),
        ]
        for doc in runs
    ]
    print(format_table(
        ["id", "kind", "workload", "combo", "pairs", "total_s"], rows
    ))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json

    from repro.obs.runs import load_run

    doc = load_run(_runs_dir(args), args.run)
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_runs_diff
    from repro.obs.runs import diff_runs, load_run

    directory = _runs_dir(args)
    diff = diff_runs(load_run(directory, args.a), load_run(directory, args.b))
    print(format_runs_diff(diff))
    return 0


def _cmd_runs_check(args: argparse.Namespace) -> int:
    import json

    from repro.bench.reporting import format_regression_findings
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.runs import compare_baseline, load_run

    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    current = load_run(_runs_dir(args), args.run)
    findings = compare_baseline(
        baseline,
        current,
        tolerance=args.tolerance,
        ratios_only=args.ratios_only,
        sections=args.sections.split(",") if args.sections else None,
        memory_tolerance=args.memory_tolerance,
    )
    regressions = [f for f in findings if f.regressed]
    registry = MetricsRegistry()
    registry.increment("run.checked_metrics", len(findings))
    registry.increment("run.regressions", len(regressions))
    if findings:
        print(format_regression_findings(findings))
    counters = registry.counters()
    print(
        "run check: "
        f"checked={counters.get('run.checked_metrics', 0)} "
        f"regressions={counters.get('run.regressions', 0)}",
        file=sys.stderr,
    )
    return 1 if regressions else 0


def _cmd_runs_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import bench_smoke_rows
    from repro.obs.atomicio import atomic_write_json
    from repro.obs.runs import (
        build_run_manifest,
        resolve_runs_dir,
        write_run_manifest,
    )

    rows = bench_smoke_rows(
        num_records=args.records,
        rounds=args.rounds,
        slow_stage2=args.slow_stage2,
    )
    atomic_write_json(args.output, rows, indent=2)
    print(f"bench rows -> {args.output}", file=sys.stderr)
    if not args.no_run_manifest:
        doc = build_run_manifest(
            kind="bench",
            workload=rows["e2e_smoke"]["workload"],
            rows=rows,
            argv=sys.argv[1:],
        )
        path = write_run_manifest(resolve_runs_dir(args.runs_dir), doc)
        print(f"run {doc['id']} -> {path}", file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.corpus == "dblp":
        records = generate_dblp(args.num_records, seed=args.seed)
    elif args.corpus == "skewed":
        records = generate_skewed(args.num_records, seed=args.seed)
    else:
        shared = read_records(args.shared_with) if args.shared_with else None
        records = generate_citeseerx(
            args.num_records, seed=args.seed, rid_base=10_000_000, shared_with=shared
        )
    if args.increase > 1:
        records = increase_dataset(records, args.increase)
    write_records(args.output, records)
    print(f"{len(records)} records -> {args.output}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel set-similarity joins using MapReduce (SIGMOD 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_self = sub.add_parser("selfjoin", help="self-join one record file")
    p_self.add_argument("input")
    _add_join_options(p_self)
    p_self.set_defaults(func=_cmd_selfjoin)

    p_rs = sub.add_parser("rsjoin", help="join two record files (R the smaller)")
    p_rs.add_argument("r_input")
    p_rs.add_argument("s_input")
    _add_join_options(p_rs)
    p_rs.set_defaults(func=_cmd_rsjoin)

    p_gen = sub.add_parser("generate", help="generate a synthetic corpus")
    p_gen.add_argument("corpus", choices=["dblp", "citeseerx", "skewed"])
    p_gen.add_argument("num_records", type=int)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--increase", type=int, default=1,
                       help="apply the paper's dataset-increase technique")
    p_gen.add_argument("--shared-with", default=None,
                       help="DBLP file whose publications seed CITESEERX "
                            "(makes R-S joins non-empty)")
    p_gen.set_defaults(func=_cmd_generate)

    p_lint = sub.add_parser(
        "lint",
        help="statically check mapper/reducer/kernel code against the "
             "MR contract (repro.analysis.mrlint)",
    )
    p_lint.add_argument("paths", nargs="+",
                        help="python files or directory trees to lint")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="finding output format (default: text)")
    p_lint.add_argument("--flow", action="store_true",
                        help="also run the interprocedural mrflow analysis "
                             "(MR101-MR105) over the same paths")
    p_lint.set_defaults(func=_cmd_lint)

    p_flow = sub.add_parser(
        "flow",
        help="whole-program dataflow analysis of cross-stage MR contracts: "
             "interprocedural determinism taint, emit-shape vs reducer/"
             "partitioner checks, counter-name registry, shared-memory "
             "lifecycle (repro.analysis.mrflow)",
    )
    p_flow.add_argument("paths", nargs="+",
                        help="python files or directory trees to analyze "
                             "as one program")
    p_flow.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="finding output format (default: text)")
    p_flow.add_argument("--baseline", default=None,
                        help="subtract findings recorded in this baseline "
                             "file; only new findings fail the run")
    p_flow.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="record current findings as the accepted "
                             "baseline at PATH and exit 0")
    p_flow.add_argument("--write-counter-registry", action="store_true",
                        help="regenerate repro/analysis/counter_names.py "
                             "from the counter sites under PATHS")
    p_flow.add_argument("--check-registry", action="store_true",
                        help="exit 1 if the committed counter registry "
                             "does not match the source tree")
    p_flow.set_defaults(func=_cmd_flow)

    p_runs = sub.add_parser(
        "runs",
        help="browse the run-manifest registry (.repro-runs) and gate "
             "benchmarks against committed baselines",
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    def _add_runs_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--runs-dir", default=None, metavar="DIR",
                       help="registry directory (default: $REPRO_RUNS_DIR "
                            "or .repro-runs)")

    p_runs_list = runs_sub.add_parser("list", help="list recorded runs")
    _add_runs_dir(p_runs_list)
    p_runs_list.set_defaults(func=_cmd_runs_list)

    p_runs_show = runs_sub.add_parser(
        "show", help="print one run manifest as JSON"
    )
    p_runs_show.add_argument("run",
                             help="run id, unique prefix, 'latest', or a "
                                  "manifest file path")
    _add_runs_dir(p_runs_show)
    p_runs_show.set_defaults(func=_cmd_runs_show)

    p_runs_diff = runs_sub.add_parser(
        "diff", help="compare two runs: stage times, changed counters"
    )
    p_runs_diff.add_argument("a", help="baseline run ref")
    p_runs_diff.add_argument("b", help="candidate run ref")
    _add_runs_dir(p_runs_diff)
    p_runs_diff.set_defaults(func=_cmd_runs_diff)

    p_runs_check = runs_sub.add_parser(
        "check",
        help="compare bench rows against a baseline file with noise "
             "thresholds; exit 1 on sustained slowdowns (the CI perf gate)",
    )
    p_runs_check.add_argument("run",
                              help="current run: id, 'latest', or a bench "
                                   "rows / manifest JSON file")
    p_runs_check.add_argument("--baseline", required=True, metavar="PATH",
                              help="baseline rows document, e.g. "
                                   "benchmarks/results/BENCH_kernel.json")
    p_runs_check.add_argument("--tolerance", type=float, default=0.5,
                              help="allowed bad-direction slowdown ratio "
                                   "above 1.0 before a metric regresses "
                                   "(default: 0.5 = 1.5x)")
    p_runs_check.add_argument("--ratios-only", action="store_true",
                              help="check only scale-free ratio metrics "
                                   "(*_share_pct/*_overhead_pct) — for "
                                   "baselines measured on other hardware")
    p_runs_check.add_argument("--memory-tolerance", type=float, default=None,
                              metavar="RATIO",
                              help="separate tolerance for the *maxrss_kb "
                                   "memory-watermark class (higher is worse; "
                                   "default: same as --tolerance)")
    p_runs_check.add_argument("--sections", default=None,
                              help="comma-separated section allowlist "
                                   "(default: all sections present in both)")
    _add_runs_dir(p_runs_check)
    p_runs_check.set_defaults(func=_cmd_runs_check)

    p_runs_bench = runs_sub.add_parser(
        "bench",
        help="run the quick e2e smoke bench and write its rows document "
             "(feeds 'runs check')",
    )
    p_runs_bench.add_argument("-o", "--output", required=True,
                              help="rows JSON output path")
    p_runs_bench.add_argument("--records", type=int, default=2000,
                              help="DBLP corpus size (default: 2000)")
    p_runs_bench.add_argument("--rounds", type=int, default=3,
                              help="best-of rounds (default: 3)")
    p_runs_bench.add_argument("--slow-stage2", action="store_true",
                              help="deliberately degrade the Stage-2 plan "
                                   "(one token group -> one hot reducer); "
                                   "used by CI to prove the gate trips")
    p_runs_bench.add_argument("--no-run-manifest", action="store_true",
                              help="do not record the bench in the registry")
    _add_runs_dir(p_runs_bench)
    p_runs_bench.set_defaults(func=_cmd_runs_bench)

    p_trace = sub.add_parser(
        "trace-report",
        help="analyze --trace output: per-stage critical path, straggler "
             "tasks and reduce-group skew (work-per-slot Gini, straggler "
             "share, p99/median); pass several traces to compare routing "
             "balance",
    )
    p_trace.add_argument("traces", nargs="+",
                         help="Chrome trace-event JSON file(s) from --trace")
    p_trace.add_argument("--validate-only", action="store_true",
                         help="only check the files against the trace-event "
                              "schema (required keys, monotonic ts)")
    p_trace.set_defaults(func=_cmd_trace_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
