"""Stage 3 — record join (Section 3.3 / Section 4 Stage 3).

Builds actual pairs of joined records from the Stage-2 RID-pair list
and the original record file(s).  Duplicate RID pairs produced by
Stage 2 are eliminated here, per the paper.

* **BRJ** (Basic Record Join) — two phases.  Phase one routes every
  record and every RID pair to the RID's reducer, which fills in the
  record for each half of each pair; a composite ``(rid, tag)`` key
  sorted record-first lets the reducer hold only the record and a
  dedup set.  Phase two groups the two half-filled pairs and outputs
  the complete record pair.
* **OPRJ** (One-Phase Record Join) — the RID-pair list is broadcast
  (distributed cache) and indexed by every map task; mappers emit the
  same half-filled pairs directly from the record inputs (a map-side
  join, cf. Pig's fragment-replicate join), and a single reduce phase
  assembles them.  Loading the list costs every map task the same
  constant time — the paper's explanation for OPRJ's limited speedup —
  and its memory footprint grows with the dataset, which is what makes
  OPRJ run out of memory at scale (Figure 14); both effects are
  reproduced via the runtime's broadcast accounting.

Self-joins and R-S joins share the implementation: record halves are
addressed by ``(relation, rid)`` with relation 0 for self-joins and
R = 0 / S = 1 for R-S joins, so overlapping RID spaces cannot collide.
Output records are ``(record_line_1, record_line_2, similarity)`` with
the R (or lower-RID) record first.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.join.records import rid_of
from repro.mapreduce.job import Context, MapReduceJob

#: value tags inside phase-1 keys: the record sorts before its pairs.
_TAG_RECORD = 0
_TAG_PAIR = 1

DUPLICATE_PAIRS_DROPPED = "stage3.duplicate_pairs_dropped"
RECORD_PAIRS_OUTPUT = "stage3.record_pairs_output"


def _pair_targets(pair: tuple, is_rs: bool) -> list[tuple[tuple[int, int], int]]:
    """The two ``((relation, rid), side)`` addresses of a RID pair."""
    rid1, rid2, _sim = pair
    rel2 = 1 if is_rs else 0
    return [((0, rid1), 0), ((rel2, rid2), 1)]


def _half_side(group_key: tuple[int, int], pair: tuple, is_rs: bool) -> int:
    """Which half of *pair* the reducer for *group_key* fills in."""
    if is_rs:
        return group_key[0]
    return 0 if group_key[1] == pair[0] else 1


# ---------------------------------------------------------------------------
# BRJ
# ---------------------------------------------------------------------------


def _make_brj_fill_mapper(
    record_files: dict[str, int], pairs_file: str, is_rs: bool
) -> Callable:
    """Phase-1 mapper: route records and pairs to their RID reducers.

    ``record_files`` maps input file name to its relation tag.
    """

    def mapper(record, ctx: Context) -> None:
        if ctx.input_file == pairs_file:
            for address, _side in _pair_targets(record, is_rs):
                ctx.emit((address, _TAG_PAIR), record)
        else:
            rel = record_files[ctx.input_file]
            ctx.emit(((rel, rid_of(record)), _TAG_RECORD), record)

    return mapper


def _brj_fill_reducer(is_rs: bool) -> Callable:
    """Phase-1 reducer: attach the record to each of its RID pairs,
    deduplicating pairs (Stage 2 may emit one pair from several
    groups)."""

    def reducer(group_key: tuple[int, int], values: Iterator, ctx: Context) -> None:
        record_line: str | None = None
        seen: set[tuple[int, int]] = set()
        charged = 0
        try:
            for value in values:
                if isinstance(value, str):
                    # the (rid, tag) sort delivers the record first
                    record_line = value
                    charged = ctx.reserve_memory_for(value, "BRJ record half")
                    continue
                if record_line is None:
                    raise ValueError(
                        f"RID pair {value!r} references RID {group_key[1]} "
                        "which has no record in the Stage-3 input"
                    )
                rid1, rid2, similarity = value
                if (rid1, rid2) in seen:
                    ctx.counters.increment(DUPLICATE_PAIRS_DROPPED)
                    continue
                seen.add((rid1, rid2))
                charged += ctx.reserve_memory_for((rid1, rid2), "BRJ dedup set")
                side = _half_side(group_key, value, is_rs)
                ctx.write(((rid1, rid2, similarity), side, record_line))
            ctx.observe("stage3.pairs_per_rid", len(seen))
        finally:
            ctx.release_memory(charged)

    return reducer


def _half_join_mapper(record: tuple, ctx: Context) -> None:
    """Phase-2 (identity) mapper: key half-filled pairs by their RID pair."""
    pair_key, side, record_line = record
    ctx.emit(pair_key, (side, record_line))


def _half_join_reducer(pair_key: tuple, values: Iterator, ctx: Context) -> None:
    """Phase-2 reducer: combine the two halves into a full record pair."""
    halves = dict(values)
    if len(halves) != 2:  # pragma: no cover - indicates a dangling RID
        raise ValueError(
            f"RID pair {pair_key!r} received {len(halves)} halves; "
            "does every RID in the pair list exist in the record input?"
        )
    _rid1, _rid2, similarity = pair_key
    ctx.write((halves[0], halves[1], similarity))
    ctx.counters.increment(RECORD_PAIRS_OUTPUT)


def brj_jobs(
    record_files: dict[str, int],
    pairs_file: str,
    output: str,
    num_reducers: int,
    is_rs: bool,
) -> list[MapReduceJob]:
    """The two BRJ jobs: fill halves, then join halves."""
    halves_file = output + ".halves"
    fill_job = MapReduceJob(
        name="brj-fill",
        inputs=[*record_files, pairs_file],
        output=halves_file,
        mapper=_make_brj_fill_mapper(record_files, pairs_file, is_rs),
        reducer=_brj_fill_reducer(is_rs),
        num_reducers=num_reducers,
        partition=lambda key: key[0],
        sort_key=lambda key: key,
        group_key=lambda key: key[0],
    )
    join_job = MapReduceJob(
        name="brj-join",
        inputs=[halves_file],
        output=output,
        mapper=_half_join_mapper,
        reducer=_half_join_reducer,
        num_reducers=num_reducers,
    )
    return [fill_job, join_job]


# ---------------------------------------------------------------------------
# OPRJ
# ---------------------------------------------------------------------------


def oprj_jobs(
    record_files: dict[str, int],
    pairs_file: str,
    output: str,
    num_reducers: int,
    is_rs: bool,
) -> list[MapReduceJob]:
    """The single OPRJ job: broadcast the RID pairs, join map-side."""
    state: dict = {}

    def map_setup(ctx: Context) -> None:
        # Build rid -> pairs index from the broadcast list.  The raw
        # list bytes are charged by the runtime; the index is charged
        # here — this is the load whose cost is constant in the cluster
        # size and whose footprint grows with the data (Section 6.1.1
        # Stage 3, Figure 14).
        by_rid: dict[tuple[int, int], list[tuple]] = {}
        seen: set[tuple[int, int]] = set()
        for pair in ctx.broadcast[pairs_file]:
            rid1, rid2, _sim = pair
            if (rid1, rid2) in seen:
                continue
            seen.add((rid1, rid2))
            for address, _side in _pair_targets(pair, is_rs):
                by_rid.setdefault(address, []).append(pair)
            ctx.reserve_memory(48, "OPRJ broadcast RID-pair index")
        state["by_rid"] = by_rid

    def mapper(record, ctx: Context) -> None:
        rel = record_files[ctx.input_file]
        address = (rel, rid_of(record))
        for pair in state["by_rid"].get(address, ()):
            side = _half_side(address, pair, is_rs)
            ctx.emit(pair, (side, record))

    return [
        MapReduceJob(
            name="oprj",
            inputs=list(record_files),
            output=output,
            mapper=mapper,
            reducer=_half_join_reducer,
            num_reducers=num_reducers,
            broadcast=[pairs_file],
            map_setup=map_setup,
        )
    ]


def stage3_jobs(
    config: JoinConfig,
    record_files: dict[str, int],
    pairs_file: str,
    output: str,
    num_reducers: int,
    is_rs: bool,
) -> list[MapReduceJob]:
    """Build the Stage 3 jobs selected by ``config.stage3``."""
    if config.stage3 == "brj":
        return brj_jobs(record_files, pairs_file, output, num_reducers, is_rs)
    return oprj_jobs(record_files, pairs_file, output, num_reducers, is_rs)
