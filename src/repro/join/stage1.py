"""Stage 1 — token ordering (Section 3.1).

Both algorithms consume the original record file(s) and produce the
DFS file ``<output>`` holding one token per line in ascending
frequency order (the global token ordering the prefix filter needs).

* **BTO** (Basic Token Ordering) — two MapReduce phases: phase one
  counts token frequencies (map tokenizes, combine pre-aggregates,
  reduce totals); phase two swaps (token, count) to (count, token) and
  sorts through a single reducer, producing the totally ordered list.
* **OPTO** (One-Phase Token Ordering) — one phase: the same counting
  map/combine feeds a *single* reducer that accumulates total counts
  in memory and sorts them in its tear-down hook, trading the second
  phase for a serial in-memory sort.

Ties in frequency are broken by token text, making the order — and
every downstream stage — deterministic.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.mapreduce.job import Context, MapReduceJob
from repro.join.config import JoinConfig
from repro.join.records import join_value


def _make_token_count_mapper(config: JoinConfig) -> Callable[[str, Context], None]:
    """Tokenize the join attribute and emit ``(token, 1)``."""
    tokenizer, schema = config.tokenizer, config.schema

    def mapper(line: str, ctx: Context) -> None:
        for token in tokenizer.tokenize(join_value(line, schema)):
            ctx.emit(token, 1)

    return mapper


def _count_combiner(token: str, counts: list, ctx: Context) -> None:
    ctx.emit(token, sum(counts))


def bto_jobs(
    config: JoinConfig,
    inputs: list[str],
    output: str,
    num_reducers: int,
) -> list[MapReduceJob]:
    """The two BTO jobs: count then sort."""
    counts_file = output + ".counts"

    def count_reducer(token: str, counts: Iterator, ctx: Context) -> None:
        total = sum(counts)
        ctx.observe("stage1.token_frequency", total)
        ctx.write((token, total))

    count_job = MapReduceJob(
        name="bto-count",
        inputs=inputs,
        output=counts_file,
        mapper=_make_token_count_mapper(config),
        combiner=_count_combiner,
        reducer=count_reducer,
        num_reducers=num_reducers,
    )

    def swap_mapper(record: tuple, ctx: Context) -> None:
        token, count = record
        ctx.emit((count, token), None)

    def sort_reducer(key: tuple, values: Iterator, ctx: Context) -> None:
        _count, token = key
        for _ in values:
            ctx.write(token)

    sort_job = MapReduceJob(
        name="bto-sort",
        inputs=[counts_file],
        output=output,
        mapper=swap_mapper,
        reducer=sort_reducer,
        num_reducers=1,  # a total order requires a single reducer
    )
    return [count_job, sort_job]


def opto_jobs(
    config: JoinConfig,
    inputs: list[str],
    output: str,
) -> list[MapReduceJob]:
    """The single OPTO job: count into one reducer, sort at tear-down."""

    def reduce_setup(ctx: Context) -> None:
        ctx.token_counts = {}

    def reducer(token: str, counts: Iterator, ctx: Context) -> None:
        total = sum(counts)
        ctx.observe("stage1.token_frequency", total)
        ctx.token_counts[token] = ctx.token_counts.get(token, 0) + total
        ctx.reserve_memory(len(token) + 16, "OPTO token counts")

    def reduce_teardown(ctx: Context) -> None:
        ordered = sorted(ctx.token_counts.items(), key=lambda kv: (kv[1], kv[0]))
        for token, _count in ordered:
            ctx.write(token)

    return [
        MapReduceJob(
            name="opto",
            inputs=inputs,
            output=output,
            mapper=_make_token_count_mapper(config),
            combiner=_count_combiner,
            reducer=reducer,
            num_reducers=1,
            reduce_setup=reduce_setup,
            reduce_teardown=reduce_teardown,
        )
    ]


def stage1_jobs(
    config: JoinConfig,
    inputs: list[str],
    output: str,
    num_reducers: int,
) -> list[MapReduceJob]:
    """Build the Stage 1 jobs selected by ``config.stage1``."""
    if config.stage1 == "bto":
        return bto_jobs(config, inputs, output, num_reducers)
    return opto_jobs(config, inputs, output)
