"""Configuration recommendations — the paper's summaries as code.

Sections 6.1.3 and 6.2.3 distill the evaluation into guidance:

* Stage 1: **BTO** ("the best choice"); OPTO only wins on very small
  clusters and scales worse.
* Stage 2: **PK** ("the best choice").
* Stage 3: **OPRJ** is somewhat faster when the RID-pair list is small
  enough to broadcast, but its load cost is constant in the cluster
  and grows with the data, and it eventually runs out of memory —
  "we recommend BRJ as a good alternative"; overall,
  "for both self-join and R-S join cases, we recommend BTO-PK-BRJ as
  a robust and scalable method".

:func:`recommend_config` encodes exactly that: BTO-PK-BRJ unless the
caller provides an estimated RID-pair volume that comfortably fits in
task memory, in which case OPRJ's map-side join is suggested.
"""

from __future__ import annotations

from repro.join.config import JoinConfig

#: conservative per-pair footprint of OPRJ's broadcast index (bytes):
#: the pair tuple plus dict/index overhead
_OPRJ_BYTES_PER_PAIR = 120

#: fraction of the task memory budget OPRJ's index may occupy before
#: BRJ is recommended instead
_OPRJ_BUDGET_FRACTION = 0.5


def estimate_oprj_index_bytes(expected_pairs: int) -> int:
    """Approximate memory OPRJ needs to broadcast-and-index the
    RID-pair list in every map task."""
    return expected_pairs * _OPRJ_BYTES_PER_PAIR


def recommend_config(
    expected_pairs: int | None = None,
    memory_per_task_mb: float | None = None,
    base: JoinConfig | None = None,
) -> JoinConfig:
    """The paper's recommended configuration for a workload.

    Parameters
    ----------
    expected_pairs:
        Estimated number of RID pairs the join will produce (e.g. from
        a sampled pre-run, or a previous execution's counters).  When
        unknown, the robust BTO-PK-BRJ is returned.
    memory_per_task_mb:
        The per-task memory budget OPRJ's broadcast must fit into.
    base:
        Configuration to start from (similarity, threshold, schema are
        preserved); defaults to :class:`JoinConfig`'s defaults.

    Returns BTO-PK-BRJ unless the estimated OPRJ index occupies less
    than half the task budget, in which case BTO-PK-OPRJ is suggested
    (the paper: OPRJ was somewhat faster whenever it fit).
    """
    base = base or JoinConfig()
    config = base.with_options(stage1="bto", kernel="pk", stage3="brj")
    if expected_pairs is None or memory_per_task_mb is None:
        return config
    budget_bytes = memory_per_task_mb * 1024 * 1024 * _OPRJ_BUDGET_FRACTION
    if estimate_oprj_index_bytes(expected_pairs) <= budget_bytes:
        return config.with_options(stage3="oprj")
    return config
