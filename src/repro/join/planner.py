"""Configuration recommendations and skew-adaptive Stage-2 planning.

Sections 6.1.3 and 6.2.3 distill the evaluation into guidance:

* Stage 1: **BTO** ("the best choice"); OPTO only wins on very small
  clusters and scales worse.
* Stage 2: **PK** ("the best choice").
* Stage 3: **OPRJ** is somewhat faster when the RID-pair list is small
  enough to broadcast, but its load cost is constant in the cluster
  and grows with the data, and it eventually runs out of memory —
  "we recommend BRJ as a good alternative"; overall,
  "for both self-join and R-S join cases, we recommend BTO-PK-BRJ as
  a robust and scalable method".

:func:`recommend_config` encodes exactly that: BTO-PK-BRJ unless the
caller provides an estimated RID-pair volume that comfortably fits in
task memory, in which case OPRJ's map-side join is suggested.

:func:`plan_stage2` is the skew-adaptive layer on top
(arXiv:1804.05615): given a :class:`repro.join.estimate.PrefixSample`
it estimates per-routing-key reduce loads, chooses routing mode /
group count / batch size by a makespan + shuffle cost model, and marks
token groups whose load dominates a reduce wave for run-time splitting
across ``split_factor`` reducer shards — the point where extra
replication buys a shorter critical path in the Afrati/Ullman
(arXiv:1204.1754) replication-rate sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ppjoin import ppjoin_self_join
from repro.core.prefixes import Projection
from repro.join.config import JoinConfig
from repro.join.estimate import PrefixSample

#: conservative per-pair footprint of OPRJ's broadcast index (bytes):
#: the pair tuple plus dict/index overhead
_OPRJ_BYTES_PER_PAIR = 120

#: fraction of the task memory budget OPRJ's index may occupy before
#: BRJ is recommended instead
_OPRJ_BUDGET_FRACTION = 0.5


def estimate_oprj_index_bytes(expected_pairs: int) -> int:
    """Approximate memory OPRJ needs to broadcast-and-index the
    RID-pair list in every map task."""
    return expected_pairs * _OPRJ_BYTES_PER_PAIR


def recommend_config(
    expected_pairs: int | None = None,
    memory_per_task_mb: float | None = None,
    base: JoinConfig | None = None,
) -> JoinConfig:
    """The paper's recommended configuration for a workload.

    Parameters
    ----------
    expected_pairs:
        Estimated number of RID pairs the join will produce (e.g. from
        a sampled pre-run, or a previous execution's counters).  When
        unknown, the robust BTO-PK-BRJ is returned.
    memory_per_task_mb:
        The per-task memory budget OPRJ's broadcast must fit into.
    base:
        Configuration to start from (similarity, threshold, schema are
        preserved); defaults to :class:`JoinConfig`'s defaults.

    Returns BTO-PK-BRJ unless the estimated OPRJ index occupies less
    than half the task budget, in which case BTO-PK-OPRJ is suggested
    (the paper: OPRJ was somewhat faster whenever it fit).
    """
    base = base or JoinConfig()
    config = base.with_options(stage1="bto", kernel="pk", stage3="brj")
    if expected_pairs is None or memory_per_task_mb is None:
        return config
    budget_bytes = memory_per_task_mb * 1024 * 1024 * _OPRJ_BUDGET_FRACTION
    if estimate_oprj_index_bytes(expected_pairs) <= budget_bytes:
        return config.with_options(stage3="oprj")
    return config


# ---------------------------------------------------------------------------
# skew-adaptive Stage-2 planning
# ---------------------------------------------------------------------------

#: never split more than this many token groups — beyond the first few
#: the remaining routes are below threshold anyway, and each split adds
#: replication
_MAX_SPLIT_TOKENS = 16

#: minimum estimated records on a route before splitting is worth the
#: replicated inserts at all
_MIN_SPLIT_ROUTE_LOAD = 64.0

#: cost (in kernel-work units) of shipping one replicated record
#: through the shuffle — what grouped routing saves over individual
_SHUFFLE_COST_WEIGHT = 0.5

#: additional cost per *split replica*: every extra add copy is also
#: emitted by a mapper (key build, partition, byte accounting), and the
#: map phase runs before any reducer can start, so replicas lengthen
#: the critical path at roughly the cost of a few candidate scans each
_MAP_EMIT_COST = 1.5

#: below this mean route load the columnar batch path's block-assembly
#: overhead outweighs its verification speedup
_BATCH_MIN_MEAN_ROUTE_LOAD = 8.0

#: cost of one verification that survives the filters, relative to one
#: shuffled/inserted record — verify walks both token arrays and emits,
#: an insert appends to a few posting lists
_VERIFY_PAIR_COST = 8.0

#: cost of one candidate-pair touch during the probe scan.  Every
#: record pair sharing a route is touched by the posting-list scan
#: even when the length/positional filters then prune it, so a route's
#: probe cost is ~quadratic in its load regardless of how many pairs
#: survive — this term is what makes record-heavy routes with zero
#: join results still worth splitting
_CANDIDATE_SCAN_COST = 1.0

#: grouped-routing candidates evaluated, as multiples of num_reducers
_GROUPED_CANDIDATE_FACTORS = (1, 4)


@dataclass(frozen=True)
class Stage2Plan:
    """One adaptive Stage-2 execution plan.

    ``splits`` names hot *tokens* (not routes): the sample-local order
    the planner saw differs from the real Stage-1 order, so the plan
    carries token strings and Stage 2 resolves them against the real
    order at map setup (:func:`repro.join.stage2.resolve_splits`).
    ``()`` means run unsplit — byte-identical placement to the static
    plan.
    """

    routing: str
    num_groups: int | None
    batch_size: int | None
    #: ``(token, shard_count)`` per hot group, deterministic order
    splits: tuple[tuple[str, int], ...] = field(default=())
    sampled_records: int = 0

    def counters(self) -> dict[str, int]:
        """The ``plan.*`` counters surfaced through JoinReport."""
        return {
            "plan.batch_size": self.batch_size or 0,
            "plan.num_groups": self.num_groups or 0,
            "plan.routing_grouped": 1 if self.routing == "grouped" else 0,
            "plan.sampled_records": self.sampled_records,
            "plan.split_factor": max((k for _t, k in self.splits), default=0),
            "plan.splits": len(self.splits),
        }


@dataclass(frozen=True)
class _RouteProfile:
    """Scaled per-route loads of one candidate routing.

    ``records[route]`` is the estimated reduce-input record count;
    ``work[route]`` the estimated kernel work (inserts + probes +
    surviving verifications) in insert-equivalent units; ``shuffled``
    the total shuffled records.
    """

    records: dict[int, float]
    work: dict[int, float]
    shuffled: float


def _route_profiles(
    sample: PrefixSample, num_groups: int | None, config: JoinConfig
) -> _RouteProfile:
    """Profile every route of a candidate routing from the sample.

    Routes are sample-local ranks (individual) or group ids (grouped);
    a record costs one shuffled copy per **distinct** route.  A route's
    kernel work is modeled as inserts + candidate-pair scans +
    surviving verifications: the scan term is analytic (``m·(m-1)/2``
    touches among ``m`` members), while the verify term is *measured*
    by running the real kernel on the route's sampled members, because
    record counts cannot tell a near-duplicate cluster (verifications
    survive the filters and dominate) from a merely record-heavy token
    (everything is pruned).  Pairwise quantities scale by ``1/p²`` like
    any sampled join cardinality, record counts by ``1/p``.
    """
    members: dict[int, list[int]] = {}
    for idx, ranks in enumerate(sample.prefix_rank_lists):
        if num_groups is None:
            routes: "tuple[int, ...] | set[int]" = ranks  # ranks are distinct
        else:
            routes = {rank % num_groups for rank in ranks}
        # sorted: set order would leak into members' dict insertion order
        # and from there into float-accumulation order downstream
        for route in sorted(routes):
            members.setdefault(route, []).append(idx)
    scale = sample.scale
    token_lists = sample.token_rank_lists
    records: dict[int, float] = {}
    work: dict[int, float] = {}
    shuffled = 0.0
    for route, idxs in members.items():
        m = len(idxs)
        shuffled += m
        pairs = 0
        if m >= 2 and token_lists:
            projs = [Projection(i, token_lists[i]) for i in idxs]
            pairs = len(ppjoin_self_join(projs, config.sim, config.threshold))
        records[route] = m * scale
        touches = m * (m - 1) / 2.0
        work[route] = (
            2.0 * m * scale
            + (_CANDIDATE_SCAN_COST * touches + _VERIFY_PAIR_COST * pairs)
            * scale
            * scale
        )
    return _RouteProfile(records=records, work=work, shuffled=shuffled * scale)


def _pick_splits(
    work: dict[int, float],
    records: dict[int, float],
    num_reducers: int,
    split_threshold: float,
    split_factor: int,
) -> list[int]:
    """Routes whose estimated work dominates a reduce wave, heaviest
    first — split *candidates*; :func:`_admit_splits` keeps only the
    ones that actually lower the modeled cost."""
    if split_factor < 2 or not work:
        return []
    mean_per_reducer = sum(work.values()) / max(1, num_reducers)
    hot = [
        route
        for route, w in work.items()
        if w > split_threshold * mean_per_reducer
        and records.get(route, 0.0) >= _MIN_SPLIT_ROUTE_LOAD
    ]
    hot.sort(key=lambda route: (-work[route], route))
    return hot[:_MAX_SPLIT_TOKENS]


def _plan_cost(
    profile: _RouteProfile,
    split_routes: list[int],
    num_reducers: int,
    split_factor: int,
) -> float:
    """Estimated makespan + shuffle cost of one candidate plan.

    A route's work ``w`` decomposes into ``records`` inserts plus
    probe/verify work; splitting it ``k`` ways replicates the inserts
    to every shard but divides the probe/verify share, so the heaviest
    shard costs ``records + (w - records)/k`` while total work and
    shuffle grow by ``(k-1)·records`` — the Afrati/Ullman
    replication-rate tradeoff.  Makespan is the larger of the heaviest
    single reduce unit and the perfectly-balanced average.
    """
    split_set = set(split_routes)
    total_work = 0.0
    max_unit = 0.0
    extra_shuffle = 0.0
    for route, w in profile.work.items():
        if route in split_set:
            inserts = profile.records.get(route, 0.0)
            unit = inserts + (w - inserts) / split_factor
            total_work += w + (split_factor - 1) * inserts
            extra_shuffle += (split_factor - 1) * inserts
        else:
            unit = w
            total_work += w
        if unit > max_unit:
            max_unit = unit
    makespan = max(max_unit, total_work / max(1, num_reducers))
    return (
        makespan
        + _SHUFFLE_COST_WEIGHT * (profile.shuffled + extra_shuffle)
        + _MAP_EMIT_COST * extra_shuffle
    )


def _admit_splits(
    profile: _RouteProfile,
    hot: list[int],
    num_reducers: int,
    split_factor: int,
) -> tuple[list[int], float]:
    """Keep the hot-route prefix whose split lowers the plan cost most.

    Evaluates splitting the ``j`` heaviest hot routes for every prefix
    length ``j`` and keeps the cheapest (ties go to fewer splits).  A
    record-heavy but filter-pruned route passes the load threshold yet
    only gains replication from splitting, so prefixes including it
    cost more and it is dropped; several *equally* hot quadratic routes
    are split together, which one-at-a-time greedy admission would miss
    (splitting only one leaves the others as the makespan).  Returns
    the admitted splits (heaviest first) and the resulting plan cost.
    """
    best_j = 0
    best_cost = _plan_cost(profile, [], num_reducers, split_factor)
    for j in range(1, len(hot) + 1):
        trial = _plan_cost(profile, hot[:j], num_reducers, split_factor)
        if trial < best_cost:
            best_j = j
            best_cost = trial
    return hot[:best_j], best_cost


def plan_stage2(
    sample: PrefixSample,
    config: JoinConfig,
    num_reducers: int,
) -> Stage2Plan:
    """Choose a Stage-2 plan for the sampled workload.

    Evaluates individual routing plus grouped routing at a few group
    counts under the cost model of :func:`_plan_cost` (each candidate
    with its own best split set), then picks the cheapest — ties go to
    the earlier candidate, individual first, so the choice is
    deterministic.  Returns a no-op plan (static config echoed back,
    no splits) when the sample is empty.
    """
    rank_lists = sample.prefix_rank_lists
    if not rank_lists:
        return Stage2Plan(
            routing=config.routing,
            num_groups=config.num_groups,
            batch_size=config.batch_size,
            splits=(),
            sampled_records=sample.records_sampled,
        )
    ind_profile = _route_profiles(sample, None, config)

    candidates: list[tuple[float, str, int | None, list[int], _RouteProfile]] = []
    ind_hot = _pick_splits(
        ind_profile.work, ind_profile.records,
        num_reducers, config.split_threshold, config.split_factor,
    )
    ind_splits, ind_cost = _admit_splits(
        ind_profile, ind_hot, num_reducers, config.split_factor
    )
    candidates.append((ind_cost, "individual", None, ind_splits, ind_profile))
    for factor in _GROUPED_CANDIDATE_FACTORS:
        num_groups = max(1, num_reducers * factor)
        if num_groups >= len(sample.order):
            continue  # as many groups as tokens = individual routing
        profile = _route_profiles(sample, num_groups, config)
        hot = _pick_splits(
            profile.work, profile.records,
            num_reducers, config.split_threshold, config.split_factor,
        )
        splits, cost = _admit_splits(
            profile, hot, num_reducers, config.split_factor
        )
        candidates.append((cost, "grouped", num_groups, splits, profile))

    best = min(candidates, key=lambda c: c[0])
    _cost, routing, num_groups, split_routes, profile = best

    # resolve split routes to token names the runtime can re-anchor on
    # the real Stage-1 order
    split_tokens: list[str] = []
    if routing == "individual":
        split_tokens = [sample.order[route] for route in split_routes]
    elif split_routes:
        # grouped: name each hot group by its heaviest member token
        assert num_groups is not None
        heaviest: dict[int, tuple[float, str]] = {}
        for rank, load in ind_profile.work.items():
            group = rank % num_groups
            token = sample.order[rank]
            entry = (-load, token)
            if group not in heaviest or entry < heaviest[group]:
                heaviest[group] = entry
        split_tokens = [
            heaviest[g][1] for g in split_routes if g in heaviest
        ]

    total_load = sum(profile.records.values())
    mean_route_load = total_load / max(1, len(profile.records))
    if mean_route_load < _BATCH_MIN_MEAN_ROUTE_LOAD:
        batch_size: int | None = None
    else:
        batch_size = config.batch_size or 64

    return Stage2Plan(
        routing=routing,
        num_groups=num_groups,
        batch_size=batch_size,
        splits=tuple((token, config.split_factor) for token in split_tokens),
        sampled_records=sample.records_sampled,
    )
