"""Plan-time memory admission and the runtime degradation ladder.

The paper's Section 5 answers "what if a token group does not fit in
reducer memory?" with block processing; this module turns that answer
into an *automatic OOM-recovery path* with two cooperating layers:

**Plan-time admission** (:func:`plan_admission`).  When
``JoinConfig.memory_budget_mb`` is set, the driver estimates the
per-group Stage-2 reducer footprint from the seeded prefix sample
(:func:`repro.join.estimate.sample_prefix_frequencies`) — the same
sample the skew-adaptive planner draws — and *pre-degrades* the plan
until the estimated peak fits under the budget: grouped routing is
refined to individual tokens, the PK kernel falls back to BK (blocks
are BK-only), a Section-5 :class:`~repro.join.blocks.BlockPolicy` is
engaged with a block count derived from the budget and a strategy
chosen by comparing replication cost against local spill I/O, and
finally the columnar batch is clamped.  The footprint model reuses
:func:`repro.join.blocks.projection_spill_bytes` — the same per-record
byte model the reduce-based spill path charges — scaled by the sample
rate.

**Runtime degradation** (:func:`next_escalation` / :func:`apply_step`).
When a Stage-2 task raises
:class:`~repro.mapreduce.types.InsufficientMemoryError` — whether from
the simulated byte meter, a ``squeeze`` fault, or the real-RSS
watchdog — the driver treats it as a *plan fault*, not a task fault:
the stage is re-planned one ladder rung down and re-run.  The ladder,
from cheapest to most drastic::

    routing:individual      grouped -> per-token routing
    kernel:bk               PK -> BK (unlocks Section-5 blocks)
    blocks:reduce:2         engage block processing
    blocks:<strategy>:<2n>  double the block count (halve block size)
    batch:<n//2>            shrink the columnar batch
    batch:none              scalar kernel
    (None)                  ladder exhausted -> re-raise

Every rung preserves bit-identical join output (each is an existing
differentially-tested equivalence), so a degraded run's pairs match the
unfaulted run exactly.  Steps are plain strings — persisted in the
checkpoint manifest so ``--resume`` replays the degraded plan instead
of rediscovering it, and reported under the ``memory.*`` counters that
differential comparisons strip.
"""

from __future__ import annotations

import math
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING

from repro.join.blocks import (
    MAP_BASED,
    REDUCE_BASED,
    BlockPolicy,
    projection_spill_bytes,
)

if TYPE_CHECKING:
    from repro.join.config import JoinConfig
    from repro.join.estimate import PrefixSample
    from repro.join.planner import Stage2Plan

__all__ = [
    "MEMORY_ADMISSION_ADJUSTMENTS",
    "MEMORY_ADMITTED",
    "MEMORY_ESCALATIONS",
    "MEMORY_EST_PEAK",
    "MEMORY_REPLANS",
    "apply_degradations",
    "apply_step",
    "choose_block_strategy",
    "estimate_group_footprints",
    "estimate_peak_bytes",
    "next_escalation",
    "plan_admission",
]

#: stage replans the driver performed after Stage-2 memory faults
MEMORY_REPLANS = "memory.replans"
#: escalation-ladder rungs applied (admission steps excluded)
MEMORY_ESCALATIONS = "memory.escalations"
#: plan-time admission ran for this join (0/1)
MEMORY_ADMITTED = "memory.admitted"
#: degradation steps the admission loop applied before any job ran
MEMORY_ADMISSION_ADJUSTMENTS = "memory.admission_adjustments"
#: admitted plan's estimated Stage-2 peak, bytes
MEMORY_EST_PEAK = "memory.est_peak_bytes"

#: fraction of the budget the estimated peak must fit under — the
#: remainder absorbs estimation error (the sample sees a fraction of
#: the records; scaling the max group footprint is noisy)
_HEADROOM = 0.8
#: hard cap on the block count — beyond this, per-block metadata and
#:  scheduling overhead dominate whatever memory the split still saves
_MAX_BLOCKS = 4096
#: blocks resident in one reduce call: the loaded (indexed) block plus
#: the probe-side block/stream being joined against it
_BLOCK_RESIDENCY = 2
#: smallest batch the ladder halves down to before going scalar
_MIN_BATCH = 8
#: batch staging buffer allowance as a fraction of the budget
_BATCH_BUDGET_FRACTION = 0.25
#: simulated cost per byte *replicated through the shuffle* by
#: map-based block processing (network; matches the planner's
#: ``_SHUFFLE_COST_WEIGHT``)
_REPLICATION_COST_WEIGHT = 0.5
#: simulated cost per byte *spilled and re-read locally* by
#: reduce-based block processing (local disk: cheaper per byte than
#: the network, but the bytes are paid twice — once written, once or
#: more re-read)
_LOCAL_IO_COST_WEIGHT = 0.4


# -- footprint model --------------------------------------------------------


def estimate_group_footprints(
    sample: "PrefixSample", config: "JoinConfig"
) -> dict[int, float]:
    """Estimated resident bytes per Stage-2 reduce group.

    A BK reduce call holds every projection routed to its group; the PK
    call's index live-bytes peak is the same order.  Each sampled
    record contributes :func:`projection_spill_bytes` of its *full*
    token list to every route its prefix fans out to (under the
    config's routing), scaled back up by the sample rate.
    """
    grouped = config.routing == "grouped" and config.num_groups is not None
    num_groups = config.num_groups
    has_signature = config.bitmap_filter
    footprints: dict[int, float] = {}
    for prefix_ranks, token_ranks in zip(
        sample.prefix_rank_lists, sample.token_rank_lists
    ):
        record_bytes = projection_spill_bytes(len(token_ranks), has_signature)
        if grouped:
            routes = sorted({rank % num_groups for rank in prefix_ranks})
        else:
            routes = sorted(set(prefix_ranks))
        for route in routes:
            footprints[route] = footprints.get(route, 0.0) + record_bytes
    scale = sample.scale
    return {route: total * scale for route, total in footprints.items()}


def _mean_projection_bytes(sample: "PrefixSample", config: "JoinConfig") -> float:
    if not sample.token_rank_lists:
        return 0.0
    total = sum(
        projection_spill_bytes(len(ranks), config.bitmap_filter)
        for ranks in sample.token_rank_lists
    )
    return total / len(sample.token_rank_lists)


def estimate_peak_bytes(sample: "PrefixSample", config: "JoinConfig") -> int:
    """Estimated per-task Stage-2 reducer memory peak under *config*.

    The peak is the largest group footprint — divided across blocks
    when a :class:`BlockPolicy` is engaged (two blocks resident per
    call) — plus the columnar staging buffer when the batched kernel
    path is active (Section-5 block reducers always run scalar, so the
    buffer term drops out once blocks are engaged).
    """
    footprints = estimate_group_footprints(sample, config)
    if not footprints:
        return 0
    peak = max(footprints.values())
    if config.blocks is not None:
        peak = _BLOCK_RESIDENCY * peak / config.blocks.num_blocks
    if config.batch_size is not None and config.blocks is None:
        peak += config.batch_size * _mean_projection_bytes(sample, config)
    return int(math.ceil(peak))


def choose_block_strategy(total_group_bytes: float, num_blocks: int) -> str:
    """Pick map-based replication vs reduce-based spilling by cost.

    Map-based block processing replicates each block to every later
    block's reduce call — ``(B-1)/2`` extra copies of the data through
    the shuffle on average.  Reduce-based processing ships each record
    once but spills blocks ``1..B-1`` locally and re-reads them
    ``(B-1)/2`` times on average.  With network bytes costed above
    local-disk bytes (matching the simulator's disk/network bandwidth
    ratio), replication wins at small block counts and spilling wins
    once the replication factor blows up; ties go to reduce-based, the
    paper's more scalable variant.
    """
    if num_blocks < 2:
        return REDUCE_BASED
    replicated = total_group_bytes * (num_blocks - 1) / 2.0
    map_cost = _REPLICATION_COST_WEIGHT * replicated
    spilled = total_group_bytes * (num_blocks - 1) / num_blocks
    reread = total_group_bytes * (num_blocks - 1) / 2.0
    reduce_cost = _LOCAL_IO_COST_WEIGHT * (spilled + reread)
    return MAP_BASED if map_cost < reduce_cost else REDUCE_BASED


# -- degradation steps ------------------------------------------------------


def apply_step(
    config: "JoinConfig", plan: "Stage2Plan | None", step: str
) -> tuple["JoinConfig", "Stage2Plan | None"]:
    """Apply one degradation *step* string to a (config, plan) pair.

    Steps are the shared vocabulary of plan-time admission, the runtime
    escalation ladder and the checkpoint manifest:

    * ``routing:individual`` — per-token routing (clears hot-group
      splits: split keys are routes of the old granularity);
    * ``kernel:bk`` — PK -> BK kernel fallback;
    * ``blocks:<map|reduce>:<n>`` — engage / resize Section-5 block
      processing (clears ``length_class_width``, the alternative
      Section-5 strategy, and hot-group splits);
    * ``batch:<n>`` / ``batch:none`` — clamp the columnar batch.

    Returns a new pair; the inputs are never mutated.
    """
    kind, _, arg = step.partition(":")
    if kind == "routing":
        if arg != "individual":
            raise ValueError(f"unknown routing degradation step {step!r}")
        config = config.with_options(routing="individual", num_groups=None)
        if plan is not None:
            plan = dataclass_replace(
                plan, routing="individual", num_groups=None, splits=()
            )
        return config, plan
    if kind == "kernel":
        if arg != "bk":
            raise ValueError(f"unknown kernel degradation step {step!r}")
        return config.with_options(kernel="bk"), plan
    if kind == "blocks":
        strategy, _, count = arg.partition(":")
        if strategy not in (MAP_BASED, REDUCE_BASED) or not count.isdigit():
            raise ValueError(f"unknown blocks degradation step {step!r}")
        config = config.with_options(
            blocks=BlockPolicy(strategy=strategy, num_blocks=int(count)),
            length_class_width=None,
        )
        if plan is not None and plan.splits:
            plan = dataclass_replace(plan, splits=())
        return config, plan
    if kind == "batch":
        batch = None if arg == "none" else int(arg)
        config = config.with_options(batch_size=batch)
        if plan is not None:
            plan = dataclass_replace(plan, batch_size=batch)
        return config, plan
    raise ValueError(f"unknown degradation step {step!r}")


def apply_degradations(
    config: "JoinConfig", plan: "Stage2Plan | None", steps: list[str]
) -> tuple["JoinConfig", "Stage2Plan | None"]:
    """Fold :func:`apply_step` over *steps* (checkpoint replay order)."""
    for step in steps:
        config, plan = apply_step(config, plan, step)
    return config, plan


def next_escalation(config: "JoinConfig") -> str | None:
    """The next runtime ladder rung for *config*, or ``None`` when the
    ladder is exhausted and the memory error must surface.

    The runtime ladder has no sample to size blocks from, so it engages
    at 2 and doubles — each doubling halves the per-call footprint —
    bounded by the caller's ``max_replan_retries``.
    """
    if config.routing == "grouped":
        return "routing:individual"
    if config.kernel == "pk":
        return "kernel:bk"
    if config.blocks is None:
        return f"blocks:{REDUCE_BASED}:2"
    if config.blocks.num_blocks < _MAX_BLOCKS:
        return f"blocks:{config.blocks.strategy}:{config.blocks.num_blocks * 2}"
    if config.batch_size is not None and config.batch_size > _MIN_BATCH:
        return f"batch:{config.batch_size // 2}"
    if config.batch_size is not None:
        return "batch:none"
    return None


# -- plan-time admission ----------------------------------------------------


def _admission_step(
    sample: "PrefixSample", config: "JoinConfig", allowance: float
) -> str | None:
    """The next *static* degradation for an over-budget estimate.

    Unlike the runtime ladder, admission sees the footprint estimate,
    so block count and batch clamp are computed in one shot instead of
    searched by doubling/halving.
    """
    if config.routing == "grouped" and config.num_groups is not None:
        return "routing:individual"
    if config.length_class_width is None:
        if config.kernel == "pk":
            return "kernel:bk"
        footprints = estimate_group_footprints(sample, config)
        peak = max(footprints.values(), default=0.0)
        wanted = max(
            2, math.ceil(_BLOCK_RESIDENCY * peak / allowance) if allowance else 2
        )
        num_blocks = min(_MAX_BLOCKS, wanted)
        if config.blocks is None or config.blocks.num_blocks < num_blocks:
            strategy = choose_block_strategy(sum(footprints.values()), num_blocks)
            return f"blocks:{strategy}:{num_blocks}"
    if config.batch_size is not None and config.blocks is None:
        mean = _mean_projection_bytes(sample, config)
        fit = (
            int(_BATCH_BUDGET_FRACTION * allowance / mean) if mean > 0 else 0
        )
        if fit >= 1 and fit < config.batch_size:
            return f"batch:{fit}"
        if fit < 1:
            return "batch:none"
    return None


def plan_admission(
    sample: "PrefixSample",
    config: "JoinConfig",
    plan: "Stage2Plan | None",
) -> tuple["JoinConfig", "Stage2Plan | None", dict[str, int]]:
    """Admit (and if needed pre-degrade) a Stage-2 plan under the budget.

    Returns ``(config, plan, counters)``: the possibly-degraded pair
    plus the ``memory.*`` admission counters.  A no-op returning the
    inputs untouched when ``config.memory_budget_mb`` is ``None``.
    Deterministic — the sample is seeded, so a resumed run recomputes
    the identical admitted plan.
    """
    if config.memory_budget_mb is None:
        return config, plan, {}
    allowance = _HEADROOM * config.memory_budget_mb * 1024 * 1024
    adjustments = 0
    estimated = estimate_peak_bytes(sample, config)
    while estimated > allowance:
        step = _admission_step(sample, config, allowance)
        if step is None:
            break
        config, plan = apply_step(config, plan, step)
        adjustments += 1
        estimated = estimate_peak_bytes(sample, config)
    counters = {
        MEMORY_ADMITTED: 1,
        MEMORY_ADMISSION_ADJUSTMENTS: adjustments,
        MEMORY_EST_PEAK: estimated,
    }
    return config, plan, counters
