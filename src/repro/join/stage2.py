"""Stage 2 — RID-pair generation, self-join case (Section 3.2).

The mapper loads the Stage-1 token ordering (distributed cache),
projects each record on (RID, rank-encoded join-attribute tokens),
extracts the probing prefix and replicates the projection under one
routing key per prefix token (individual routing) or per distinct
prefix-token group (grouped routing).

Keys are composite, exactly as the paper manipulates them:

    (route, length, relation)

partitioned on ``route`` only (custom partitioner), sorted on the full
key, grouped on ``route`` — so each reduce call sees one candidate
group with values streaming in ascending set-size order, which is what
lets the PK kernel evict index entries below the length-filter lower
bound (Section 3.2.2) and the R-S kernel stream R before S
(Section 4).  The relation component is 0 for self-joins.

Reducers:

* **BK** (Basic Kernel) — materializes the group (memory-metered) and
  verifies its cross product pairwise with the length filter plus
  merge-based verification.
* **PK** (PPJoin+ Kernel) — runs :class:`repro.core.ppjoin.PPJoinIndex`
  over the length-sorted stream.

Both may emit the same RID pair from different groups; duplicates are
eliminated in Stage 3, per the paper.  Output records are
``(rid1, rid2, similarity)`` with ``rid1 < rid2``.

Section 5 plugs into the BK path in two forms: block processing
(see :mod:`repro.join.blocks` and the ``*_blocks_*`` reducers here)
and the length filter as a *secondary routing criterion*
(``JoinConfig.length_class_width`` — reducer keys become
``(token, length-class)`` so each reduce step holds one class).

**Hot-group splitting** (the skew-adaptive layer, see
:mod:`repro.join.planner`): when an adaptive :class:`Stage2Plan`
marks token groups for splitting, keys extend to

    (route, shard, length, relation)

partitioned on ``(route, shard)`` via
:func:`repro.mapreduce.hashing.shard_partition`.  A split group's
records are shipped twice — an *add copy* (``REL_R``) replicated to
every shard, and a *probe copy* (``REL_S``) sent only to the record's
home shard, emitted immediately before its own add copy under the
identical key.  Every shard therefore indexes the complete group in
the original arrival order while probing only its ``1/k`` share of the
records, so each candidate pair is found exactly once (at the later
record's home shard) against exactly the index state the unsplit
reducer would have had — pairs *and* per-filter prune counters are
bit-identical in sum to the static plan (differential-tested).
Unsplit routes ride along with ``shard == -1``, keeping their classic
partition placement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.analysis.sanitize import Sanitizer, make_sanitizer
from repro.core.batch import REL_R, REL_S, TokenBatch, batch_spans
from repro.core.bitmaps import overlap_upper_bound, signature as bitmap_signature
from repro.core.ordering import TokenOrder
from repro.core.ppjoin import PPJoinIndex
from repro.core.prefixes import TokenGrouping
from repro.core.verification import overlap
from repro.join.blocks import (
    ROLE_LOAD,
    ROLE_STREAM,
    SPILL_READ,
    SPILL_WRITTEN,
    BlockPolicy,
    MAP_BASED,
    projection_spill_bytes,
)
from repro.join.config import JoinConfig
from repro.join.records import join_value, rid_of
from repro.mapreduce.hashing import shard_of, shard_partition
from repro.mapreduce.job import Context, MapReduceJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.join.planner import Stage2Plan

#: user counters
CANDIDATE_PAIRS = "stage2.candidate_pairs"
PAIRS_OUTPUT = "stage2.pairs_output"
#: columnar blocks packed by the batched reducers (a pure function of
#: the group sizes and ``batch_size``, so it merges identically on
#: every engine — safe to compare cross-engine like the other counters)
STAGE2_BATCHES = "stage2.batches"
#: candidates pruned per filter stage (filter-effectiveness counters)
PRUNED_LENGTH = "stage2.pruned_length"
PRUNED_BITMAP = "stage2.pruned_bitmap"
PRUNED_POSITIONAL = "stage2.pruned_positional"
PRUNED_SUFFIX = "stage2.pruned_suffix"

#: PPJoinIndex.filter_stats key -> counter name
FILTER_COUNTERS = {
    "length": PRUNED_LENGTH,
    "bitmap": PRUNED_BITMAP,
    "positional": PRUNED_POSITIONAL,
    "suffix": PRUNED_SUFFIX,
}


def merge_index_filter_stats(ctx: Context, index: PPJoinIndex) -> None:
    """Fold a PK index's per-filter prune tallies into the job counters."""
    for stage, count in index.filter_stats.items():
        if count:
            ctx.counters.increment(FILTER_COUNTERS[stage], count)


def make_pk_index(
    config: JoinConfig,
    mode: str,
    evict: bool,
    sanitizer: Sanitizer | None = None,
) -> PPJoinIndex:
    """The PK kernel's index under *config*: with the bitmap filter on,
    the bitmap bound replaces the recursive suffix filter (which it
    empirically subsumes at a fraction of the cost — both admissible,
    identical output either way)."""
    width = config.bitmap_width if config.bitmap_filter else None
    return PPJoinIndex(
        config.sim,
        config.threshold,
        mode=mode,
        evict=evict,
        use_suffix=width is None,
        bitmap_width=width,
        sanitizer=sanitizer,
    )


#: value layout shared by every Stage-2 projection:
#: ``(rel, rid, true_size, signature, tokens)``
def _projection_size(value: tuple) -> int:
    return value[2]


def _projection_rel(value: tuple) -> int:
    return value[0]

# Relation tags inside keys/values (R sorts before S); canonical
# definitions live in repro.core.batch, re-exported here because the
# Stage-2 modules are their historical home.
assert REL_R == 0 and REL_S == 1


# ---------------------------------------------------------------------------
# shared mapper machinery
# ---------------------------------------------------------------------------


def load_token_order(ctx: Context, token_order_file: str) -> TokenOrder:
    """Rebuild the global token order from the distributed cache.

    This happens once per map task — the per-task constant cost the
    paper attributes to loading the ordered tokens in Stage 2.
    """
    return TokenOrder(ctx.broadcast[token_order_file])


def make_router(config: JoinConfig, order: TokenOrder) -> Callable:
    """Return ``routes(prefix) -> list`` for the configured routing
    strategy.  Prefix elements are ranks (``token_encoding="rank"``) or
    raw tokens (``"string"``); individual routing uses the element
    itself as the route, grouped routing maps it to its group id."""
    if config.routing == "individual":
        def routes(prefix) -> list:
            return list(dict.fromkeys(prefix))
        return routes
    num_groups = config.num_groups or max(1, len(order))
    grouping = TokenGrouping(order, num_groups)
    if config.token_encoding == "string":
        def routes(prefix) -> list:
            return grouping.groups_of_tokens(prefix)
        return routes
    def routes(prefix) -> list:
        return grouping.groups_of_ranks(prefix)
    return routes


def resolve_splits(
    plan: "Stage2Plan | None", config: JoinConfig, order: TokenOrder
) -> dict:
    """Re-anchor a plan's hot-token splits on the real Stage-1 order.

    The planner worked on a *sample-local* token order, so the plan
    names hot groups by token string; this maps each one to the routing
    key the configured router would actually emit — the token's rank
    (individual routing, rank encoding), the token itself (individual,
    string encoding) or its group id (grouped routing).  Tokens the
    real order never saw are skipped (they cannot be hot); two hot
    tokens collapsing into one grouped route keep the larger shard
    count.  Routes with fewer than two shards are dropped — splitting
    one way is the unsplit plan.
    """
    if plan is None or not plan.splits:
        return {}
    resolved: dict = {}
    num_tokens = len(order)
    if config.routing == "grouped":
        num_groups = config.num_groups or max(1, num_tokens)
        for token, k in plan.splits:
            rank = order.rank(token)
            if rank >= num_tokens:
                continue
            group = rank % num_groups
            resolved[group] = max(resolved.get(group, 1), k)
    elif config.token_encoding == "string":
        for token, k in plan.splits:
            if order.rank(token) < num_tokens:
                resolved[token] = max(resolved.get(token, 1), k)
    else:
        for token, k in plan.splits:
            rank = order.rank(token)
            if rank < num_tokens:
                resolved[rank] = max(resolved.get(rank, 1), k)
    return {route: k for route, k in resolved.items() if k > 1}


def project_record(
    line: str, config: JoinConfig, order: TokenOrder, unknown: str
) -> tuple[int, "Sequence", int]:
    """Parse a record line into (rid, encoded tokens, true size).

    The token array is globally ordered in the configured wire format:
    ascending ranks in a compact ``array('i')`` for
    ``token_encoding="rank"`` (the kernel fast path), lexicographically
    sorted raw tokens for ``"string"`` (the opt-out baseline).  ``true
    size`` counts tokens *before* dropping unknowns — for R and
    self-join inputs it equals ``len(tokens)``.
    """
    rid = rid_of(line)
    raw = config.tokenizer.tokenize(join_value(line, config.schema))
    if config.token_encoding == "string":
        tokens = order.encode_strings(raw, unknown=unknown)
    else:
        tokens = order.encode_array(raw, unknown=unknown)
    return rid, tokens, len(raw)


def make_self_mapper(
    config: JoinConfig,
    blocks: BlockPolicy | None,
    token_order_file: str,
    plan: "Stage2Plan | None" = None,
):
    """Self-join Stage-2 mapper (shared by BK and PK).

    With a split-carrying *plan*, keys take the extended
    ``(route, shard, length, relation)`` shape: split routes replicate
    an add copy to every shard and send one probe copy (tagged
    ``REL_S``, emitted first so the stable sort keeps it immediately
    before its own add) to the record's home shard; unsplit routes emit
    a single dual-role copy with ``shard == -1``.
    """
    sim, threshold = config.sim, config.threshold
    split_mode = plan is not None and bool(plan.splits)
    state: dict = {}

    def map_setup(ctx: Context) -> None:
        order = load_token_order(ctx, token_order_file)
        state["order"] = order
        state["routes"] = make_router(config, order)
        state["splits"] = resolve_splits(plan, config, order)

    width = config.length_class_width
    bitmap_width = config.bitmap_width if config.bitmap_filter else None

    def mapper(line: str, ctx: Context) -> None:
        rid, ranks, _true = project_record(line, config, state["order"], "error")
        n = len(ranks)
        if n == 0:
            return
        prefix = ranks[: sim.prefix_length(n, threshold)]
        sig = bitmap_signature(ranks, bitmap_width) if bitmap_width else None
        value = (REL_R, rid, n, sig, ranks)
        route_list = state["routes"](prefix)
        ctx.observe("stage2.prefix_tokens", len(prefix))
        ctx.observe("stage2.record_routes", len(route_list))
        for route in route_list:
            if split_mode:
                num_shards = state["splits"].get(route)
                if num_shards is None:
                    ctx.emit((route, -1, n, REL_R), value)
                else:
                    home = shard_of(rid, num_shards)
                    ctx.emit((route, home, n, REL_R), (REL_S,) + value[1:])
                    for shard in range(num_shards):
                        ctx.emit((route, shard, n, REL_R), value)
            elif blocks is not None:
                block = blocks.block_of(rid)
                if blocks.strategy == MAP_BASED:
                    for step, role in blocks.replication_schedule(block):
                        ctx.emit((route, step, role), (step, role) + value)
                else:
                    ctx.emit((route, block), (block,) + value)
            elif width is not None:
                # Section 5, first paragraph: the length filter as a
                # secondary routing criterion.  The record is *indexed*
                # in its own length class and *probes* every lower
                # class that can hold a join partner, so each reduce
                # step holds one class in memory.
                own_class = n // width
                lowest = sim.length_bounds(n, threshold)[0] // width
                for cls in range(lowest, own_class):
                    ctx.emit((route, cls, ROLE_STREAM), (cls, ROLE_STREAM) + value)
                ctx.emit((route, own_class, ROLE_LOAD), (own_class, ROLE_LOAD) + value)
            else:
                ctx.emit((route, n, REL_R), value)

    return map_setup, mapper


# ---------------------------------------------------------------------------
# pairwise verification used by the BK reducers
# ---------------------------------------------------------------------------


def bk_verify(
    p1: tuple,
    p2: tuple,
    config: JoinConfig,
    counters=None,
    sanitizer: Sanitizer | None = None,
) -> float | None:
    """Length-filter + bitmap-filter + merge-verify two projections.

    Each projection is ``(rel, rid, true_size, signature, tokens)``;
    overlaps are computed on the (possibly S-filtered) token arrays
    while the length filter and required overlap use the true set
    sizes, keeping the reported similarity exact (see Section 4
    Stage 1).  When both projections carry a bitmap signature, the
    admissible popcount upper bound (:mod:`repro.core.bitmaps`) prunes
    the pair before the O(n) merge; *counters*, when given, tallies
    per-filter prunes.
    """
    sim, threshold = config.sim, config.threshold
    _rel1, _rid1, n1, sig1, toks1 = p1
    _rel2, _rid2, n2, sig2, toks2 = p2
    lo, hi = sim.length_bounds(n1, threshold)
    if not lo <= n2 <= hi:
        if counters is not None:
            counters.increment(PRUNED_LENGTH)
        if sanitizer is not None:
            sanitizer.check_prune("length", toks1, n1, toks2, n2)
        return None
    alpha = sim.overlap_threshold(n1, n2, threshold)
    if sig1 is not None and sig2 is not None:
        # The signature covers the shipped token array, which in R-S
        # joins is S-filtered — so bound with the array lengths, the
        # lengths overlap() actually merges (common <= min of both).
        if overlap_upper_bound(len(toks1), len(toks2), sig1, sig2) < alpha:
            if counters is not None:
                counters.increment(PRUNED_BITMAP)
            if sanitizer is not None:
                sanitizer.check_prune("bitmap", toks1, n1, toks2, n2)
            return None
    common = overlap(toks1, toks2, required=alpha)
    if common < alpha:
        return None
    similarity = sim.similarity_from_overlap(n1, n2, common)
    return similarity if similarity >= threshold else None


def bk_verify_block(
    b1: TokenBatch,
    i1: int,
    b2: TokenBatch,
    i2: int,
    config: JoinConfig,
    counters=None,
    sanitizer: Sanitizer | None = None,
) -> float | None:
    """:func:`bk_verify` over columnar block rows.

    Filter order, counter increments and sanitizer probes mirror the
    scalar function exactly; the O(n) Python merge is replaced by one
    exact C-level intersection (:meth:`TokenBatch.overlap`).  Because
    :func:`repro.core.verification.overlap` early-aborts only when the
    result is provably below ``alpha``, branching on the exact
    cardinality takes the same path every time — decisions, similarity
    values and counters are bit-identical (differential-tested).
    """
    sim, threshold = config.sim, config.threshold
    n1 = b1.true_sizes[i1]
    n2 = b2.true_sizes[i2]
    lo, hi = sim.length_bounds(n1, threshold)
    if not lo <= n2 <= hi:
        if counters is not None:
            counters.increment(PRUNED_LENGTH)
        if sanitizer is not None:
            sanitizer.check_prune("length", b1.view(i1), n1, b2.view(i2), n2)
        return None
    alpha = sim.overlap_threshold(n1, n2, threshold)
    sig1 = b1.sigs[i1]
    sig2 = b2.sigs[i2]
    if sig1 is not None and sig2 is not None:
        if overlap_upper_bound(b1.size(i1), b2.size(i2), sig1, sig2) < alpha:
            if counters is not None:
                counters.increment(PRUNED_BITMAP)
            if sanitizer is not None:
                sanitizer.check_prune("bitmap", b1.view(i1), n1, b2.view(i2), n2)
            return None
    common = b1.overlap(i1, b2, i2)
    if common < alpha:
        return None
    similarity = sim.similarity_from_overlap(n1, n2, common)
    return similarity if similarity >= threshold else None


def _write_self_pair(ctx: Context, rid1: int, rid2: int, similarity: float) -> None:
    low, high = (rid1, rid2) if rid1 < rid2 else (rid2, rid1)
    ctx.write((low, high, similarity))
    ctx.counters.increment(PAIRS_OUTPUT)


# ---------------------------------------------------------------------------
# self-join reducers
# ---------------------------------------------------------------------------


def make_bk_self_reducer(config: JoinConfig) -> Callable:
    """Basic Kernel: nested-loop verification of the whole group.

    With ``config.batch_size`` set (the default) the group is packed
    into columnar :class:`TokenBatch` blocks and the cross product runs
    over block rows (:func:`bk_verify_block`); ``batch_size=None``
    keeps the scalar pair-at-a-time loop, which doubles as the
    differential oracle.  Candidate order, emitted pairs and every
    counter except ``stage2.batches`` are identical between the two.
    """
    batch_size = config.batch_size

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        if sanitizer is not None:
            values = sanitizer.sorted_values(values, _projection_size)
        projections: list[tuple] = []
        charged = 0
        try:
            for value in values:
                charged += ctx.reserve_memory_for(value, "BK candidate list")
                projections.append(value)
            total = len(projections)
            ctx.observe("stage2.group_records", total)
            ctx.observe("stage2.group_candidates", total * (total - 1) // 2)
            counters = ctx.counters
            if batch_size is None:
                for i, p1 in enumerate(projections):
                    for p2 in projections[i + 1 :]:
                        counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(p1, p2, config, counters, sanitizer)
                        if similarity is not None:
                            _write_self_pair(ctx, p1[1], p2[1], similarity)
                return
            batches = [
                TokenBatch.from_projections(projections[start:stop])
                for start, stop in batch_spans(total, batch_size)
            ]
            if batches:
                counters.increment(STAGE2_BATCHES, len(batches))
            del projections  # the packed blocks now own the token payloads
            for bi, b1 in enumerate(batches):
                for i1 in range(b1.count):
                    rid1 = b1.rids[i1]
                    for i2 in range(i1 + 1, b1.count):
                        counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify_block(
                            b1, i1, b1, i2, config, counters, sanitizer
                        )
                        if similarity is not None:
                            _write_self_pair(ctx, rid1, b1.rids[i2], similarity)
                    for b2 in batches[bi + 1 :]:
                        for i2 in range(b2.count):
                            counters.increment(CANDIDATE_PAIRS)
                            similarity = bk_verify_block(
                                b1, i1, b2, i2, config, counters, sanitizer
                            )
                            if similarity is not None:
                                _write_self_pair(
                                    ctx, rid1, b2.rids[i2], similarity
                                )
        finally:
            ctx.release_memory(charged)

    return reducer


def make_pk_self_reducer(config: JoinConfig) -> Callable:
    """PPJoin+ Kernel over the length-sorted value stream.

    With ``config.batch_size`` set the stream is packed into columnar
    :class:`TokenBatch` blocks and driven through
    :meth:`PPJoinIndex.probe_batch` — the index holds zero-copy views
    into the flat arrays instead of per-record tuples.  Per-record
    memory metering (and therefore OOM timing) matches the scalar loop
    via the ``meter`` callback.
    """
    batch_size = config.batch_size

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        index = make_pk_index(config, mode="self", evict=True, sanitizer=sanitizer)
        if sanitizer is not None:
            values = sanitizer.sorted_values(values, _projection_size)
        group_records = 0
        if batch_size is None:
            charged = 0
            for _rel, rid, _n, sig, ranks in values:
                group_records += 1
                for other_rid, similarity in index.probe(rid, ranks, signature=sig):
                    _write_self_pair(ctx, rid, other_rid, similarity)
                index.add(rid, ranks, signature=sig)
                delta = index.live_bytes - charged
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index")
                else:
                    ctx.release_memory(-delta)
                charged = index.live_bytes
        else:
            state = {"charged": 0}

            def meter() -> None:
                delta = index.live_bytes - state["charged"]
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index")
                else:
                    ctx.release_memory(-delta)
                state["charged"] = index.live_bytes

            buffered: list[tuple] = []

            def flush() -> None:
                if not buffered:
                    return
                block = TokenBatch.from_projections(buffered)
                buffered.clear()
                ctx.counters.increment(STAGE2_BATCHES)

                def emit(row: int, other_rid: int, similarity: float) -> None:
                    _write_self_pair(ctx, block.rids[row], other_rid, similarity)

                index.probe_batch(block, 0, block.count, emit, meter=meter)

            for value in values:
                group_records += 1
                buffered.append(value)
                if len(buffered) >= batch_size:
                    flush()
            flush()
            charged = state["charged"]
        ctx.observe("stage2.group_records", group_records)
        if sanitizer is not None:
            sanitizer.check_index_accounting(index)
        merge_index_filter_stats(ctx, index)
        ctx.release_memory(charged)

    return reducer


# ---------------------------------------------------------------------------
# self-join reducers for split (sharded) hot groups
# ---------------------------------------------------------------------------
#
# A split shard's value stream carries two copies per group record: an
# add copy (REL_R, replicated to every shard) and — for the 1/k of the
# records homed here — a probe copy (REL_S) sorted immediately before
# its own add copy.  Each role is performed exactly once per record
# across the shards, against the same arrival-ordered add sequence the
# unsplit reducer sees, so pairs and filter counters sum to exactly the
# unsplit run's (the admissibility argument in DESIGN.md §5g).


def make_bk_split_self_reducer(config: JoinConfig) -> Callable:
    """Basic Kernel over one shard of a split group.

    Stores the replicated add copies; each probe copy verifies against
    every add stored so far — precisely the ``j < i`` half-loop of the
    unsplit nested loop, restricted to the probes homed on this shard.
    Runs scalar always: probe/add copies interleave at the record
    grain, so columnar blocks would degenerate to single rows.
    """

    def reducer(route, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        if sanitizer is not None:
            values = sanitizer.sorted_values(values, _projection_size)
        counters = ctx.counters
        stored: list[tuple] = []
        charged = 0
        group_records = 0
        try:
            for value in values:
                group_records += 1
                if value[0] == REL_R:
                    charged += ctx.reserve_memory_for(value, "BK candidate list")
                    stored.append(value)
                    continue
                for other in stored:
                    counters.increment(CANDIDATE_PAIRS)
                    similarity = bk_verify(other, value, config, counters, sanitizer)
                    if similarity is not None:
                        _write_self_pair(ctx, other[1], value[1], similarity)
            ctx.observe("stage2.group_records", group_records)
        finally:
            ctx.release_memory(charged)

    return reducer


def make_pk_split_self_reducer(config: JoinConfig) -> Callable:
    """PPJoin+ Kernel over one shard of a split group.

    The index is the *self-mode* index (same prefixes, filters and
    eviction as the unsplit reducer) driven in tagged mode: add copies
    only insert, probe copies only probe.  Because every shard indexes
    the full add sequence and a probe sorts exactly where the record's
    own dual-role copy would, the index state at each probe — eviction
    frontier included — matches the unsplit run's bit for bit.
    """
    batch_size = config.batch_size

    def reducer(route, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        index = make_pk_index(config, mode="self", evict=True, sanitizer=sanitizer)
        if sanitizer is not None:
            values = sanitizer.sorted_values(values, _projection_size)
        group_records = 0
        if batch_size is None:
            charged = 0
            for rel, rid, _n, sig, ranks in values:
                group_records += 1
                if rel == REL_R:
                    index.add(rid, ranks, signature=sig)
                else:
                    for other_rid, similarity in index.probe(rid, ranks, signature=sig):
                        _write_self_pair(ctx, rid, other_rid, similarity)
                delta = index.live_bytes - charged
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index")
                else:
                    ctx.release_memory(-delta)
                charged = index.live_bytes
        else:
            state = {"charged": 0}

            def meter() -> None:
                delta = index.live_bytes - state["charged"]
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index")
                else:
                    ctx.release_memory(-delta)
                state["charged"] = index.live_bytes

            buffered: list[tuple] = []

            def flush() -> None:
                if not buffered:
                    return
                block = TokenBatch.from_projections(buffered)
                buffered.clear()
                ctx.counters.increment(STAGE2_BATCHES)

                def emit(row: int, other_rid: int, similarity: float) -> None:
                    _write_self_pair(ctx, block.rids[row], other_rid, similarity)

                index.probe_batch(block, 0, block.count, emit, meter=meter, tagged=True)

            for value in values:
                group_records += 1
                buffered.append(value)
                if len(buffered) >= batch_size:
                    flush()
            flush()
            charged = state["charged"]
        ctx.observe("stage2.group_records", group_records)
        if sanitizer is not None:
            sanitizer.check_index_accounting(index)
        merge_index_filter_stats(ctx, index)
        ctx.release_memory(charged)

    return reducer


# ---------------------------------------------------------------------------
# self-join reducers with Section 5 block processing (BK only)
# ---------------------------------------------------------------------------


def make_bk_self_map_blocks_reducer(config: JoinConfig) -> Callable:
    """Map-based block processing: the mapper interleaved load/stream
    copies; only the currently loaded block is held in memory."""

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        loaded: list[tuple] = []
        charged = 0
        current_step = -1
        try:
            for step, role, rel, rid, n, sig, ranks in values:
                if step != current_step:
                    ctx.release_memory(charged)
                    charged = 0
                    loaded = []
                    current_step = step
                projection = (rel, rid, n, sig, ranks)
                for other in loaded:
                    ctx.counters.increment(CANDIDATE_PAIRS)
                    similarity = bk_verify(other, projection, config, ctx.counters)
                    if similarity is not None:
                        _write_self_pair(ctx, other[1], rid, similarity)
                if role == ROLE_LOAD:
                    charged += ctx.reserve_memory_for(projection, "BK loaded block")
                    loaded.append(projection)
        finally:
            ctx.release_memory(charged)

    return reducer


def make_bk_self_reduce_blocks_reducer(config: JoinConfig) -> Callable:
    """Reduce-based block processing: spill later blocks to local disk
    and re-read them for the remaining steps (Figure 7(b))."""

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        loaded: list[tuple] = []
        charged = 0
        loaded_block = None
        spilled: dict[int, list[tuple]] = {}
        try:
            for block, rel, rid, n, sig, ranks in values:
                projection = (rel, rid, n, sig, ranks)
                if loaded_block is None:
                    loaded_block = block
                if block == loaded_block:
                    for other in loaded:
                        ctx.counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(other, projection, config, ctx.counters)
                        if similarity is not None:
                            _write_self_pair(ctx, other[1], rid, similarity)
                    charged += ctx.reserve_memory_for(projection, "BK loaded block")
                    loaded.append(projection)
                else:
                    for other in loaded:
                        ctx.counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(other, projection, config, ctx.counters)
                        if similarity is not None:
                            _write_self_pair(ctx, other[1], rid, similarity)
                    spilled.setdefault(block, []).append(projection)
                    ctx.counters.increment(
                        SPILL_WRITTEN,
                        projection_spill_bytes(len(ranks), sig is not None),
                    )
        finally:
            ctx.release_memory(charged)

        remaining = sorted(spilled)
        for idx, block in enumerate(remaining):
            loaded = []
            charged = 0
            try:
                for projection in spilled[block]:
                    ctx.counters.increment(
                        SPILL_READ,
                        projection_spill_bytes(
                            len(projection[4]), projection[3] is not None
                        ),
                    )
                    for other in loaded:
                        ctx.counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(other, projection, config, ctx.counters)
                        if similarity is not None:
                            _write_self_pair(ctx, other[1], projection[1], similarity)
                    charged += ctx.reserve_memory_for(projection, "BK loaded block")
                    loaded.append(projection)
                for later in remaining[idx + 1 :]:
                    for projection in spilled[later]:
                        ctx.counters.increment(
                            SPILL_READ,
                            projection_spill_bytes(
                                len(projection[4]), projection[3] is not None
                            ),
                        )
                        for other in loaded:
                            ctx.counters.increment(CANDIDATE_PAIRS)
                            similarity = bk_verify(
                                other, projection, config, ctx.counters
                            )
                            if similarity is not None:
                                _write_self_pair(
                                    ctx, other[1], projection[1], similarity
                                )
            finally:
                ctx.release_memory(charged)

    return reducer


# ---------------------------------------------------------------------------
# job assembly
# ---------------------------------------------------------------------------


def stage2_self_job(
    config: JoinConfig,
    records_file: str,
    token_order_file: str,
    output: str,
    num_reducers: int,
    plan: "Stage2Plan | None" = None,
) -> MapReduceJob:
    """Build the single Stage-2 job for a self-join.

    A split-carrying *plan* switches the job to the extended
    ``(route, shard, length, relation)`` key shape: partitioning goes
    through :func:`shard_partition` (unsplit routes keep their classic
    placement), grouping is on ``(route, shard)``, and split-shard
    groups (``shard >= 0``) dispatch to the split reducers.
    """
    blocks = config.blocks
    if blocks is not None and config.kernel != "bk":
        raise ValueError(
            "Section 5 block processing applies to the BK kernel "
            "(the paper sub-partitions when no further filters help); "
            "use kernel='bk' or blocks=None"
        )
    if config.length_class_width is not None and config.kernel != "bk":
        raise ValueError(
            "length-class secondary routing is a BK enhancement "
            "(the PK kernel already exploits the length filter via its "
            "composite keys); use kernel='bk' or length_class_width=None"
        )
    split_mode = plan is not None and bool(plan.splits)
    if split_mode and (blocks is not None or config.length_class_width is not None):
        raise ValueError(
            "hot-group splitting composes with the plain kernels only; "
            "drop blocks/length_class_width or run without splits"
        )
    map_setup, mapper = make_self_mapper(config, blocks, token_order_file, plan)
    if blocks is None and config.length_class_width is None:
        reducer = (
            make_pk_self_reducer(config)
            if config.kernel == "pk"
            else make_bk_self_reducer(config)
        )
    elif blocks is not None and blocks.strategy != MAP_BASED:
        reducer = make_bk_self_reduce_blocks_reducer(config)
    else:
        # Map-based Section-5 blocks and length-class routing share one
        # reduce shape: values arrive as (step/class, role, projection),
        # load-role records are held (and self-joined), stream-role
        # records verify against the loaded set only.
        reducer = make_bk_self_map_blocks_reducer(config)

    if split_mode:
        split_reducer = (
            make_pk_split_self_reducer(config)
            if config.kernel == "pk"
            else make_bk_split_self_reducer(config)
        )
        plain_reducer = reducer

        def dispatch_reducer(key, values: Iterator, ctx: Context) -> None:
            if key[1] >= 0:
                split_reducer(key, values, ctx)
            else:
                plain_reducer(key, values, ctx)

        return MapReduceJob(
            name=f"stage2-{config.kernel}-self",
            inputs=[records_file],
            output=output,
            mapper=mapper,
            reducer=dispatch_reducer,
            num_reducers=num_reducers,
            partition=lambda key: key[0],
            partitioner=lambda key, n: shard_partition(key[0], key[1], n),
            sort_key=lambda key: key,
            group_key=lambda key: (key[0], key[1]),
            broadcast=[token_order_file],
            map_setup=map_setup,
        )

    return MapReduceJob(
        name=f"stage2-{config.kernel}-self",
        inputs=[records_file],
        output=output,
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partition=lambda key: key[0],
        sort_key=lambda key: key,
        group_key=lambda key: key[0],
        broadcast=[token_order_file],
        map_setup=map_setup,
    )
