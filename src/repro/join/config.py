"""End-to-end join configuration.

A :class:`JoinConfig` picks one algorithm per stage — the paper's
nomenclature maps directly:

=========  ==========================  =========================
stage      option                      paper name
=========  ==========================  =========================
stage1     ``"bto"``                   Basic Token Ordering
stage1     ``"opto"``                  One-Phase Token Ordering
kernel     ``"bk"``                    Basic Kernel
kernel     ``"pk"``                    PPJoin+ (Indexed) Kernel
routing    ``"individual"``            individual prefix tokens
routing    ``"grouped"``               grouped tokens (round-robin)
stage3     ``"brj"``                   Basic Record Join
stage3     ``"oprj"``                  One-Phase Record Join
=========  ==========================  =========================

So ``JoinConfig(stage1="bto", kernel="pk", stage3="oprj")`` is the
paper's fastest self-join combination BTO-PK-OPRJ, and the recommended
robust combination is BTO-PK-BRJ (Section 6.1.3/6.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.similarity import SimilarityFunction, get_similarity_function
from repro.core.tokenizers import Tokenizer, WordTokenizer
from repro.join.blocks import BlockPolicy
from repro.join.records import RecordSchema

STAGE1_ALGORITHMS = ("bto", "opto")
KERNELS = ("bk", "pk")
ROUTINGS = ("individual", "grouped")
STAGE3_ALGORITHMS = ("brj", "oprj")
TOKEN_ENCODINGS = ("rank", "string")
SHUFFLE_TRANSPORTS = ("shm", "disk")


@dataclass
class JoinConfig:
    """Configuration of one end-to-end set-similarity join."""

    similarity: str | SimilarityFunction = "jaccard"
    threshold: float = 0.8
    tokenizer: Tokenizer = field(default_factory=WordTokenizer)
    schema: RecordSchema = field(default_factory=RecordSchema)
    stage1: str = "bto"
    kernel: str = "pk"
    routing: str = "individual"
    #: group count for ``routing="grouped"``; ``None`` = one group per token
    num_groups: int | None = None
    stage3: str = "brj"
    #: reducers for data-parallel jobs; ``None`` = one per cluster reduce slot
    num_reducers: int | None = None
    #: Section 5 block processing for oversized kernel groups
    blocks: BlockPolicy | None = None
    #: Section 5 (first paragraph): use the length filter as a
    #: *secondary routing criterion* for the BK kernel — reducer keys
    #: become (token, length-class) so each reduce call holds only one
    #: class of records in memory.  Value = class width in tokens.
    length_class_width: int | None = None
    #: wire format of the token arrays flowing through Stage 2:
    #: ``"rank"`` (default) ships frequency-ranked integers in a compact
    #: ``array('i')`` so the kernels' merge/filter inner loops run
    #: integer comparisons; ``"string"`` ships the raw tokens under the
    #: lexicographic total order — a valid (if less selective) global
    #: ordering that serves as the opt-out / differential baseline.
    #: Both produce identical RID pairs.
    token_encoding: str = "rank"
    #: bitmap-signature candidate pruning (arXiv:1711.07295, see
    #: :mod:`repro.core.bitmaps`): Stage-2 mappers compute one
    #: ``bitmap_width``-bit signature per record and every kernel
    #: consults the popcount overlap upper bound between the length
    #: filter and the remaining filter/verification steps.  The bound
    #: is admissible, so RID pairs are identical with the filter on or
    #: off (differential-tested).  In the PK kernel the bitmap bound
    #: *replaces* the recursive suffix filter, which it empirically
    #: subsumes at a fraction of the cost; the positional filter stays.
    bitmap_filter: bool = True
    #: signature width in bits for ``bitmap_filter`` (wider = fewer
    #: collisions = more pruning, slightly larger shuffle records)
    bitmap_width: int = 64
    #: columnar batch size for the Stage-2 kernels: the main BK/PK
    #: reducers pack this many projections into one contiguous
    #: :class:`repro.core.batch.TokenBatch` block and verify against
    #: zero-copy views of the flat token array.  ``None`` selects the
    #: scalar pair-at-a-time path, which produces bit-identical pairs
    #: and filter counters (differential-tested) and serves as the
    #: oracle.  Section-5 block/length-class reducers always run scalar.
    batch_size: int | None = 64
    #: transport of map->reduce intermediate data on the persistent
    #: parallel engine: ``"shm"`` routes partition buckets through
    #: ``multiprocessing.shared_memory`` segments (serialized once in
    #: the map worker, attached read-only by reduce workers — the
    #: parent only moves segment names and offsets), ``"disk"`` keeps
    #: the spill-file shuffle.  shm automatically falls back to disk
    #: per task when ``/dev/shm`` is unavailable or segment creation
    #: fails, and engine-wide after fault degradation; outputs are
    #: byte-identical either way.  Ignored by the other engines.
    shuffle_transport: str = "shm"
    #: skew-adaptive planning (arXiv:1804.05615): before any job runs,
    #: the driver draws a deterministic seeded sample of the input,
    #: estimates the prefix-token frequency distribution
    #: (:func:`repro.join.estimate.sample_prefix_frequencies`) and lets
    #: :func:`repro.join.planner.plan_stage2` pick routing, group count
    #: and batch size for this workload — and mark hot token groups for
    #: run-time splitting.  Emitted pairs and filter counters are
    #: bit-identical to the static plan (differential-tested).
    adaptive: bool = False
    #: split a Stage-2 token group when its estimated reduce load
    #: exceeds this multiple of the mean per-reducer load (the
    #: replication-vs-load tradeoff of arXiv:1204.1754)
    split_threshold: float = 2.0
    #: number of reducer shards a split group is spread over
    split_factor: int = 4
    #: runtime sanitizer mode (see :mod:`repro.analysis.sanitize`):
    #: wraps the Stage-2 kernels and shuffle with observe-only invariant
    #: checks — reduce-input length sortedness, a sampled filter
    #: admissibility oracle, and index byte accounting — reported as
    #: ``sanitize.checks`` / ``sanitize.violations`` counters.  Output
    #: is bit-identical with the flag on or off.  ``REPRO_SANITIZE=1``
    #: force-enables it regardless of this field.
    sanitize: bool = False
    #: plan-time memory admission (see :mod:`repro.join.memory`): budget
    #: in megabytes the Stage-2 plan must fit under.  The driver
    #: estimates per-group reducer footprints from the prefix sample and
    #: pre-selects routing granularity, a Section-5 :class:`BlockPolicy`
    #: and batch size so the estimated peak stays below the budget.
    #: ``None`` (default) skips admission; runtime degradation still
    #: applies.  Pairs are identical with or without a budget.
    memory_budget_mb: float | None = None
    #: runtime degradation: when ``True`` (default) the driver treats a
    #: Stage-2 :class:`repro.mapreduce.types.InsufficientMemoryError` as
    #: a plan fault and retries the stage down an escalation ladder
    #: (finer routing → BK kernel → engage/double blocks → shrink batch
    #: → scalar); ``False`` restores the raw fail-fast behaviour.
    auto_degrade: bool = True
    #: bound on driver-level stage replans (escalation-ladder steps)
    #: before the memory error is re-raised to the caller
    max_replan_retries: int = 6

    def __post_init__(self) -> None:
        if isinstance(self.similarity, str):
            self.similarity = get_similarity_function(self.similarity)
        if self.stage1 not in STAGE1_ALGORITHMS:
            raise ValueError(f"stage1 must be one of {STAGE1_ALGORITHMS}, got {self.stage1!r}")
        if self.kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if self.routing not in ROUTINGS:
            raise ValueError(f"routing must be one of {ROUTINGS}, got {self.routing!r}")
        if self.stage3 not in STAGE3_ALGORITHMS:
            raise ValueError(f"stage3 must be one of {STAGE3_ALGORITHMS}, got {self.stage3!r}")
        if not 0.0 < self.threshold:
            raise ValueError(f"threshold must be positive, got {self.threshold}")
        if self.token_encoding not in TOKEN_ENCODINGS:
            raise ValueError(
                f"token_encoding must be one of {TOKEN_ENCODINGS}, "
                f"got {self.token_encoding!r}"
            )
        if self.bitmap_width < 1:
            raise ValueError(
                f"bitmap_width must be >= 1, got {self.bitmap_width}"
            )
        if self.num_groups is not None and self.num_groups < 1:
            raise ValueError(f"num_groups must be >= 1, got {self.num_groups}")
        if self.length_class_width is not None and self.length_class_width < 1:
            raise ValueError(
                f"length_class_width must be >= 1, got {self.length_class_width}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1 or None, got {self.batch_size}"
            )
        if self.shuffle_transport not in SHUFFLE_TRANSPORTS:
            raise ValueError(
                f"shuffle_transport must be one of {SHUFFLE_TRANSPORTS}, "
                f"got {self.shuffle_transport!r}"
            )
        if self.split_threshold <= 0:
            raise ValueError(
                f"split_threshold must be > 0, got {self.split_threshold}"
            )
        if self.split_factor < 1:
            raise ValueError(
                f"split_factor must be >= 1, got {self.split_factor}"
            )
        if self.length_class_width is not None and self.blocks is not None:
            raise ValueError(
                "length_class_width and blocks are alternative Section-5 "
                "strategies; configure at most one"
            )
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError(
                f"memory_budget_mb must be > 0 or None, got {self.memory_budget_mb}"
            )
        if self.max_replan_retries < 0:
            raise ValueError(
                f"max_replan_retries must be >= 0, got {self.max_replan_retries}"
            )

    @property
    def sim(self) -> SimilarityFunction:
        """The resolved similarity function (never a string)."""
        assert isinstance(self.similarity, SimilarityFunction)
        return self.similarity

    @property
    def combo_name(self) -> str:
        """Paper-style combination label, e.g. ``"BTO-PK-OPRJ"``."""
        return "-".join(
            part.upper() for part in (self.stage1, self.kernel, self.stage3)
        )

    def with_options(self, **changes) -> "JoinConfig":
        """Copy with the given fields replaced."""
        return replace(self, **changes)
