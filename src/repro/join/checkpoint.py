"""Stage-level checkpoint/resume for the three-stage join drivers.

A :class:`JoinCheckpoint` persists each completed stage's DFS output
files (the token ordering, the RID pairs, the joined records) into a
:class:`~repro.mapreduce.diskdfs.LocalDiskDFS` under a checkpoint
directory, together with a JSON **manifest** describing:

* the *identity* of the join — join type, input file names, a digest
  of the :class:`~repro.join.config.JoinConfig`, a streaming
  fingerprint of every input file, and the reducer count; and
* per completed stage, the fingerprint and record count of every saved
  file (the Stage-1 entry's fingerprint doubles as the **token-order
  hash**: a resumed Stage 2 is guaranteed to see the exact global
  token order the interrupted run computed).

Resuming (``JoinCheckpoint(dir, resume=True)``) refuses with
:class:`CheckpointMismatchError` unless the manifest's identity matches
the current run exactly — a changed threshold, kernel, tokenizer or a
modified input file must never be silently joined against another
configuration's intermediate data.  On a match, the drivers restore
every completed stage's files into the cluster DFS and re-run only the
remaining stages, so the resumed run's output is byte-identical to an
uninterrupted one (asserted by the chaos test suite).

The manifest is written atomically (temp file + ``os.replace``) and a
stage is recorded only *after* all of its files are stored, so a crash
mid-checkpoint leaves the previous consistent manifest in place.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.mapreduce.diskdfs import LocalDiskDFS

if TYPE_CHECKING:
    from repro.join.config import JoinConfig

__all__ = [
    "CheckpointMismatchError",
    "JoinCheckpoint",
    "checkpoint_identity",
    "config_digest",
    "file_fingerprint",
]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


class CheckpointMismatchError(RuntimeError):
    """Resume refused: the checkpoint belongs to a different join.

    Raised when the manifest is absent/unreadable or its recorded
    identity (config digest, input fingerprints, join type, reducer
    count) differs from the run asking to resume.
    """


def _sha256(parts: list[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_digest(config: JoinConfig) -> str:
    """Deterministic digest of every output-affecting config field.

    Built by hand rather than from ``repr(config)`` because tokenizer
    and similarity objects are plain classes whose default repr embeds
    a memory address.  Observe-only fields (``sanitize``) are excluded:
    toggling them between runs cannot change any stage output.
    """
    tokenizer = config.tokenizer
    tokenizer_desc = type(tokenizer).__name__ + json.dumps(
        {k: repr(v) for k, v in sorted(vars(tokenizer).items())},
        sort_keys=True,
    )
    descriptor = {
        "similarity": config.sim.name,
        "threshold": repr(config.threshold),
        "tokenizer": tokenizer_desc,
        "schema": repr(config.schema.join_fields),
        "stage1": config.stage1,
        "kernel": config.kernel,
        "routing": config.routing,
        "num_groups": repr(config.num_groups),
        "stage3": config.stage3,
        "num_reducers": repr(config.num_reducers),
        "blocks": repr(config.blocks),
        "length_class_width": repr(config.length_class_width),
        "token_encoding": config.token_encoding,
        "bitmap_filter": repr(config.bitmap_filter),
        "bitmap_width": repr(config.bitmap_width),
    }
    return _sha256([json.dumps(descriptor, sort_keys=True)])


def file_fingerprint(dfs, name: str) -> str:
    """Order-sensitive streaming fingerprint of one DFS file."""
    digest = hashlib.sha256()
    count = 0
    for record in dfs.read(name):
        digest.update(repr(record).encode("utf-8"))
        digest.update(b"\x00")
        count += 1
    digest.update(f"records={count}".encode("utf-8"))
    return digest.hexdigest()


def checkpoint_identity(
    join_type: str,
    config: JoinConfig,
    prefix: str,
    dfs,
    input_files: list[str],
    reducers: int,
) -> dict:
    """The identity record a manifest is matched against on resume."""
    return {
        "join": join_type,
        "prefix": prefix,
        "combo": config.combo_name,
        "config": config_digest(config),
        "inputs": {name: file_fingerprint(dfs, name) for name in input_files},
        "reducers": reducers,
    }


class JoinCheckpoint:
    """Persistent stage store under *root* (created if absent).

    ``resume=False`` starts a fresh checkpoint, discarding whatever the
    directory held before; ``resume=True`` requires a manifest whose
    identity matches the one handed to :meth:`begin`.
    """

    def __init__(self, root: str | Path, resume: bool = False) -> None:
        self.root = Path(root)
        self.resume = resume
        self.root.mkdir(parents=True, exist_ok=True)
        self._store = LocalDiskDFS(self.root / "data", num_nodes=1)
        self._manifest: dict = {}

    # -- manifest ---------------------------------------------------------

    @property
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _write_manifest(self) -> None:
        tmp = self.root / f"{MANIFEST_NAME}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
        os.replace(tmp, self._manifest_path)

    def _load_manifest(self) -> dict:
        try:
            with open(self._manifest_path, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise CheckpointMismatchError(
                f"no checkpoint manifest at {self._manifest_path} — "
                "nothing to resume"
            ) from None
        except (OSError, ValueError) as exc:
            raise CheckpointMismatchError(
                f"unreadable checkpoint manifest at {self._manifest_path}: {exc}"
            ) from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise CheckpointMismatchError(
                f"checkpoint manifest version {manifest.get('version')!r} "
                f"!= supported version {MANIFEST_VERSION}"
            )
        return manifest

    # -- life cycle -------------------------------------------------------

    def begin(self, identity: dict) -> list[str]:
        """Open the checkpoint for a run with *identity*.

        Returns the names of the stages already completed (empty for a
        fresh checkpoint).  In resume mode a missing or non-matching
        manifest raises :class:`CheckpointMismatchError`, naming every
        identity key that differs.
        """
        if self.resume:
            manifest = self._load_manifest()
            recorded = manifest.get("identity", {})
            if recorded != identity:
                differing = sorted(
                    key
                    for key in set(recorded) | set(identity)
                    if recorded.get(key) != identity.get(key)
                )
                raise CheckpointMismatchError(
                    "checkpoint belongs to a different join — "
                    f"mismatched identity keys: {', '.join(differing)} "
                    f"(checkpoint dir: {self.root})"
                )
            self._manifest = manifest
            return sorted(manifest.get("stages", {}))
        self._manifest = {
            "version": MANIFEST_VERSION,
            "identity": identity,
            "stages": {},
        }
        # discard stale stage data from any previous run in this dir
        for name in self._store.listdir():
            self._store.delete(name)
        self._write_manifest()
        return []

    @property
    def completed_stages(self) -> list[str]:
        return sorted(self._manifest.get("stages", {}))

    # -- memory-degradation steps -----------------------------------------

    def save_memory_steps(self, steps: list[str]) -> None:
        """Persist the runtime degradation-ladder steps applied so far.

        Written (atomically, like every manifest update) each time the
        driver replans Stage 2 after a memory fault, so a resumed run
        replays the degraded plan via :meth:`memory_steps` instead of
        rediscovering it rung by rung.
        """
        self._manifest["memory_steps"] = list(steps)
        self._write_manifest()

    def memory_steps(self) -> list[str]:
        """Degradation steps recorded by the interrupted run (in order)."""
        return list(self._manifest.get("memory_steps", []))

    # -- stages -----------------------------------------------------------

    def save_stage(self, stage: str, dfs, files: list[str]) -> None:
        """Persist *files* (read from *dfs*) as stage *stage*'s output.

        The manifest records the stage only after every file is stored,
        so an interrupted save never yields a half-checkpointed stage.
        """
        entry: dict[str, dict] = {}
        for name in files:
            records = dfs.read_all(name)
            self._store.write(f"{stage}/{name}", records)
            entry[name] = {
                "fingerprint": file_fingerprint(dfs, name),
                "records": len(records),
            }
        self._manifest.setdefault("stages", {})[stage] = {"files": entry}
        self._write_manifest()

    def restore_stage(self, stage: str, dfs) -> list[str]:
        """Write stage *stage*'s saved files back into *dfs*.

        Each restored file is re-fingerprinted against the manifest, so
        checkpoint data corrupted on disk is caught rather than joined.
        Returns the restored file names.
        """
        entry = self._manifest.get("stages", {}).get(stage)
        if entry is None:
            raise CheckpointMismatchError(
                f"stage {stage!r} is not recorded in the checkpoint manifest"
            )
        restored = []
        for name, meta in entry["files"].items():
            records = self._store.read_all(f"{stage}/{name}")
            dfs.write(name, records)
            actual = file_fingerprint(dfs, name)
            if actual != meta["fingerprint"]:
                raise CheckpointMismatchError(
                    f"checkpointed file {name!r} of stage {stage!r} does not "
                    f"match its recorded fingerprint (expected "
                    f"{meta['fingerprint'][:12]}…, got {actual[:12]}…)"
                )
            restored.append(name)
        return restored
