"""Record line format.

Records are tab-separated text lines, exactly the shape the paper
produced when preprocessing DBLP/CITESEERX (Section 6): field 0 is a
unique integer RID, the remaining fields are attributes (title, list
of authors, the rest of the content).  The join attribute is the
concatenation of one or more fields — the evaluation uses
title + authors, i.e. fields ``(1, 2)``.
"""

from __future__ import annotations

from dataclasses import dataclass

FIELD_SEP = "\t"


@dataclass(frozen=True)
class RecordSchema:
    """Which record fields form the join attribute."""

    join_fields: tuple[int, ...] = (1, 2)

    def __post_init__(self) -> None:
        if not self.join_fields:
            raise ValueError("join_fields must name at least one field")
        if 0 in self.join_fields:
            raise ValueError("field 0 is the RID, not a joinable attribute")


def make_line(rid: int, fields: list[str] | tuple[str, ...]) -> str:
    """Build a record line from a RID and its attribute fields."""
    for field in fields:
        if FIELD_SEP in field or "\n" in field:
            raise ValueError(f"field contains separator: {field!r}")
    return FIELD_SEP.join((str(rid), *fields))


def parse_fields(line: str) -> list[str]:
    """Split a record line into ``[rid, field1, ...]``."""
    return line.rstrip("\n").split(FIELD_SEP)


def rid_of(line: str) -> int:
    """Extract the RID of a record line."""
    head, _sep, _rest = line.partition(FIELD_SEP)
    return int(head)


def join_value(line: str, schema: RecordSchema) -> str:
    """Concatenate the join-attribute fields of a record line."""
    fields = parse_fields(line)
    parts = []
    for index in schema.join_fields:
        if index < len(fields):
            parts.append(fields[index])
    return " ".join(parts)
