"""The one-stage full-record alternative (Section 2.2).

The paper considered replacing Stages 2 and 3 with a single stage
whose key-value pairs carry *complete records* instead of RID
projections: reducers then verify candidates and emit joined record
pairs directly, with no record-join stage.  The authors implemented it,
"noticed a much worse performance", and dropped it — full records are
replicated once per prefix token, multiplying shuffle volume by the
record payload size.

We keep it as an ablation baseline (``bench_ablation_fullrecord``).
Only the self-join PK form is provided; that is enough to reproduce the
comparison.  Stage 1 is still required for the token ordering.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.ppjoin import PPJoinIndex
from repro.join.config import JoinConfig
from repro.join.driver import JoinReport, _num_reducers
from repro.join.stage1 import stage1_jobs
from repro.join.stage2 import PAIRS_OUTPUT, load_token_order, make_router, project_record
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.job import Context, MapReduceJob
from repro.mapreduce.pipeline import run_pipeline


def full_record_job(
    config: JoinConfig,
    records_file: str,
    token_order_file: str,
    output: str,
    num_reducers: int,
) -> MapReduceJob:
    """One job that replaces Stages 2+3: values are whole record lines."""
    sim, threshold = config.sim, config.threshold
    state: dict = {}

    def map_setup(ctx: Context) -> None:
        order = load_token_order(ctx, token_order_file)
        state["order"] = order
        state["routes"] = make_router(config, order)

    def mapper(line: str, ctx: Context) -> None:
        rid, ranks, _true = project_record(line, config, state["order"], "error")
        n = len(ranks)
        if n == 0:
            return
        prefix = ranks[: sim.prefix_length(n, threshold)]
        for route in state["routes"](prefix):
            # the value carries the complete record — the whole point
            # of the ablation: payload bytes ride the shuffle
            ctx.emit((route, n, 0), (rid, ranks, line))

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        index = PPJoinIndex(sim, threshold, mode="self", evict=True)
        lines: dict[int, str] = {}
        charged = 0
        try:
            for rid, ranks, line in values:
                charged += ctx.reserve_memory_for(line, "full-record group")
                for other_rid, similarity in index.probe(rid, ranks):
                    first, second = sorted((rid, other_rid))
                    this, other = (
                        (line, lines[other_rid])
                        if first == rid
                        else (lines[other_rid], line)
                    )
                    ctx.write((this, other, similarity))
                    ctx.counters.increment(PAIRS_OUTPUT)
                index.add(rid, ranks)
                lines[rid] = line
        finally:
            ctx.release_memory(charged)

    return MapReduceJob(
        name="fullrecord-self",
        inputs=[records_file],
        output=output,
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partition=lambda key: key[0],
        sort_key=lambda key: key,
        group_key=lambda key: key[0],
        broadcast=[token_order_file],
        map_setup=map_setup,
    )


def full_record_self_join(
    cluster: SimulatedCluster,
    records_file: str,
    config: JoinConfig | None = None,
    prefix: str | None = None,
) -> JoinReport:
    """End-to-end self-join using the one-stage full-record alternative.

    Note the output may contain duplicate record pairs (one per shared
    routing group) — there is no Stage 3 to deduplicate them, which is
    part of why the paper rejected this design.  ``JoinReport.stage3``
    is empty.
    """
    config = config or JoinConfig()
    prefix = prefix or f"{records_file}.fullrecord"
    reducers = _num_reducers(config, cluster)
    token_order_file = f"{prefix}.tokens"
    output_file = f"{prefix}.joined"

    report = JoinReport(combo=f"{config.stage1.upper()}-FULLRECORD", output_file=output_file)
    report.stage1 = run_pipeline(
        cluster, stage1_jobs(config, [records_file], token_order_file, reducers)
    )
    report.stage2 = run_pipeline(
        cluster,
        [full_record_job(config, records_file, token_order_file, output_file, reducers)],
    )
    return report
