"""Stage 2 — RID-pair generation, R-S join case (Section 4).

Differences from the self-join case, all realized through key
manipulation:

* records are tagged with their relation (R = 0, S = 1); the custom
  partitioner still hashes only the route, and the relation tag makes
  R sort before S inside each group;
* the token ordering was built on R only, so S tokens absent from it
  are dropped at projection time (they cannot produce candidates);
  each S projection carries its *original* token count so verification
  stays exact;
* for the PK kernel, keys carry a **length class** — the actual length
  for S records, the length-filter *lower bound* for R records — so
  every R projection that could join an S record is streamed to the
  reducer before that record (Figure 6), enabling index eviction;
* Section 5 block processing sub-partitions only the R side; the S
  stream is replicated per R block (map-based) or spilled once and
  re-read per block (reduce-based).

**Hot-group splitting** (see :mod:`repro.join.planner` and the
self-join module) extends keys to ``(route, shard, class, relation,
length)``: a split route replicates its R records to every shard and
partitions its S records by home shard — the textbook
fragment-replicate split, which the *unmodified* R-S reducers already
handle because their roles are purely tag-driven.  Every shard streams
the complete R side before its ``1/k`` slice of S, so pairs and filter
counters sum to exactly the unsplit run's.

Output records are ``(r_rid, s_rid, similarity)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.core.bitmaps import signature as bitmap_signature
from repro.join.blocks import (
    MAP_BASED,
    ROLE_LOAD,
    SPILL_READ,
    SPILL_WRITTEN,
    BlockPolicy,
    projection_spill_bytes,
)
from repro.analysis.sanitize import make_sanitizer
from repro.core.batch import TokenBatch
from repro.join.config import JoinConfig
from repro.join.stage2 import (
    CANDIDATE_PAIRS,
    PAIRS_OUTPUT,
    REL_R,
    REL_S,
    STAGE2_BATCHES,
    _projection_rel,
    _projection_size,
    bk_verify,
    bk_verify_block,
    load_token_order,
    make_pk_index,
    make_router,
    merge_index_filter_stats,
    project_record,
    resolve_splits,
)
from repro.mapreduce.hashing import shard_of, shard_partition
from repro.mapreduce.job import Context, MapReduceJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.join.planner import Stage2Plan


def _length_class(rel: int, true_size: int, config: JoinConfig) -> int:
    """Composite-key length class (Section 4, Figure 6).

    S records use their actual length; R records use the lower bound of
    the lengths they can join, so that sorting by (class, relation)
    streams every R record before any S record it might pair with:
    for a true pair, ``len(R) <= upper_bound(len(S))`` iff
    ``lower_bound(len(R)) <= len(S)``.
    """
    if rel == REL_S:
        return true_size
    lo, _hi = config.sim.length_bounds(true_size, config.threshold)
    return lo


def make_rs_mapper(
    config: JoinConfig,
    blocks: BlockPolicy | None,
    token_order_file: str,
    r_file: str,
    s_file: str,
    plan: "Stage2Plan | None" = None,
):
    """R-S Stage-2 mapper: tags by input file, drops S-only tokens.

    With a split-carrying *plan*, keys take the extended ``(route,
    shard, class, relation, length)`` shape: split routes replicate R
    records to every shard and send each S record to its home shard
    only; unsplit routes emit a single copy with ``shard == -1``.
    """
    sim, threshold = config.sim, config.threshold
    split_mode = plan is not None and bool(plan.splits)
    state: dict = {}

    def map_setup(ctx: Context) -> None:
        order = load_token_order(ctx, token_order_file)
        state["order"] = order
        state["routes"] = make_router(config, order)
        state["splits"] = resolve_splits(plan, config, order)

    bitmap_width = config.bitmap_width if config.bitmap_filter else None

    def mapper(line: str, ctx: Context) -> None:
        if ctx.input_file == r_file:
            rel, unknown = REL_R, "error"
        elif ctx.input_file == s_file:
            rel, unknown = REL_S, "drop"
        else:  # pragma: no cover - job wiring guarantees the inputs
            raise ValueError(f"unexpected input file {ctx.input_file!r}")
        rid, ranks, true_size = project_record(line, config, state["order"], unknown)
        n = len(ranks)
        if n == 0:
            return
        prefix = ranks[: sim.prefix_length(n, threshold)]
        # The signature covers the *shipped* (S-filtered) token array —
        # exactly the elements the kernels' overlap() merges.
        sig = bitmap_signature(ranks, bitmap_width) if bitmap_width else None
        value = (rel, rid, true_size, sig, ranks)
        cls = _length_class(rel, true_size, config)
        route_list = state["routes"](prefix)
        ctx.observe("stage2.prefix_tokens", len(prefix))
        ctx.observe("stage2.record_routes", len(route_list))
        for route in route_list:
            if split_mode:
                num_shards = state["splits"].get(route)
                if num_shards is None:
                    ctx.emit((route, -1, cls, rel, n), value)
                elif rel == REL_R:
                    for shard in range(num_shards):
                        ctx.emit((route, shard, cls, rel, n), value)
                else:
                    home = shard_of(rid, num_shards)
                    ctx.emit((route, home, cls, rel, n), value)
            elif blocks is None:
                # The trailing actual length keeps same-class R records
                # sorted by size: length classes are not injective
                # (e.g. Jaccard tau=0.8 maps lengths 4 and 5 both to
                # class 4), and the PK index requires non-decreasing
                # insertion sizes for eviction.
                ctx.emit((route, cls, rel, n), value)
            elif blocks.strategy == MAP_BASED:
                if rel == REL_R:
                    block = blocks.block_of(rid)
                    ctx.emit((route, block, ROLE_LOAD, rel), (block, ROLE_LOAD) + value)
                else:
                    for step, role in blocks.rs_stream_schedule():
                        ctx.emit((route, step, role, rel), (step, role) + value)
            else:
                block = blocks.block_of(rid) if rel == REL_R else 0
                ctx.emit((route, rel, block), (block,) + value)

    return map_setup, mapper


def _write_rs_pair(
    ctx: Context, r_proj: tuple, s_proj: tuple, similarity: float
) -> None:
    ctx.write((r_proj[1], s_proj[1], similarity))
    ctx.counters.increment(PAIRS_OUTPUT)


# ---------------------------------------------------------------------------
# reducers
# ---------------------------------------------------------------------------


def make_bk_rs_reducer(config: JoinConfig) -> Callable:
    """Basic Kernel, R-S: store the R projections (they sort first),
    stream S against them.

    The batched path (``config.batch_size`` set) packs *runs* of
    same-relation records into columnar :class:`TokenBatch` blocks.
    R and S interleave across length classes inside one group, and the
    scalar loop verifies each S against exactly the R records that
    arrived before it — so a pending S buffer is flushed whenever an R
    record arrives (and vice versa), keeping candidate order, emitted
    pairs and all counters except ``stage2.batches`` bit-identical to
    the scalar loop.
    """
    batch_size = config.batch_size

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        if sanitizer is not None:
            values = sanitizer.sorted_values(
                values, _projection_size, group_of=_projection_rel
            )
        if batch_size is None:
            stored_r: list[tuple] = []
            charged = 0
            group_records = 0
            group_candidates = 0
            try:
                for value in values:
                    group_records += 1
                    if value[0] == REL_R:
                        charged += ctx.reserve_memory_for(
                            value, "BK stored R partition"
                        )
                        stored_r.append(value)
                        continue
                    group_candidates += len(stored_r)
                    for r_proj in stored_r:
                        ctx.counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(
                            r_proj, value, config, ctx.counters, sanitizer
                        )
                        if similarity is not None:
                            _write_rs_pair(ctx, r_proj, value, similarity)
                ctx.observe("stage2.group_records", group_records)
                ctx.observe("stage2.group_candidates", group_candidates)
            finally:
                ctx.release_memory(charged)
            return

        counters = ctx.counters
        r_blocks: list[TokenBatch] = []
        stored_count = 0
        r_buf: list[tuple] = []
        s_buf: list[tuple] = []
        charged = 0
        group_records = 0
        group_candidates = 0

        def flush_r() -> None:
            nonlocal stored_count
            if not r_buf:
                return
            block = TokenBatch.from_projections(r_buf)
            r_buf.clear()
            counters.increment(STAGE2_BATCHES)
            r_blocks.append(block)
            stored_count += block.count

        def flush_s() -> None:
            if not s_buf:
                return
            block = TokenBatch.from_projections(s_buf)
            s_buf.clear()
            counters.increment(STAGE2_BATCHES)
            for si in range(block.count):
                for r_block in r_blocks:
                    for ri in range(r_block.count):
                        counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify_block(
                            r_block, ri, block, si, config, counters, sanitizer
                        )
                        if similarity is not None:
                            ctx.write(
                                (r_block.rids[ri], block.rids[si], similarity)
                            )
                            counters.increment(PAIRS_OUTPUT)

        try:
            for value in values:
                group_records += 1
                if value[0] == REL_R:
                    flush_s()
                    charged += ctx.reserve_memory_for(value, "BK stored R partition")
                    r_buf.append(value)
                    if len(r_buf) >= batch_size:
                        flush_r()
                else:
                    flush_r()
                    group_candidates += stored_count
                    s_buf.append(value)
                    if len(s_buf) >= batch_size:
                        flush_s()
            flush_s()
            ctx.observe("stage2.group_records", group_records)
            ctx.observe("stage2.group_candidates", group_candidates)
        finally:
            ctx.release_memory(charged)

    return reducer


def make_pk_rs_reducer(config: JoinConfig) -> Callable:
    """PPJoin+ Kernel, R-S: index R, probe S, with the length-class
    stream enabling eviction of too-short R entries.

    The batched path packs the mixed R/S stream into columnar
    :class:`TokenBatch` blocks in arrival order and drives them through
    :meth:`PPJoinIndex.probe_batch` (rs mode: R rows add, S rows probe
    with their true size) — row order inside a block preserves the
    R-before-S causality the length-class keys establish.
    """
    batch_size = config.batch_size

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        sanitizer = make_sanitizer(config, ctx.counters)
        index = make_pk_index(config, mode="rs", evict=True, sanitizer=sanitizer)
        if sanitizer is not None:
            values = sanitizer.sorted_values(
                values, _projection_size, group_of=_projection_rel
            )
        group_records = 0
        if batch_size is None:
            charged = 0
            for rel, rid, true_size, sig, ranks in values:
                group_records += 1
                if rel == REL_R:
                    index.add(rid, ranks, signature=sig)
                else:
                    for r_rid, similarity in index.probe(
                        rid, ranks, true_size=true_size, signature=sig
                    ):
                        ctx.write((r_rid, rid, similarity))
                        ctx.counters.increment(PAIRS_OUTPUT)
                delta = index.live_bytes - charged
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index (R partition)")
                else:
                    ctx.release_memory(-delta)
                charged = index.live_bytes
        else:
            state = {"charged": 0}

            def meter() -> None:
                delta = index.live_bytes - state["charged"]
                if delta >= 0:
                    ctx.reserve_memory(delta, "PK index (R partition)")
                else:
                    ctx.release_memory(-delta)
                state["charged"] = index.live_bytes

            buffered: list[tuple] = []

            def flush() -> None:
                if not buffered:
                    return
                block = TokenBatch.from_projections(buffered)
                buffered.clear()
                ctx.counters.increment(STAGE2_BATCHES)

                def emit(row: int, r_rid: int, similarity: float) -> None:
                    ctx.write((r_rid, block.rids[row], similarity))
                    ctx.counters.increment(PAIRS_OUTPUT)

                index.probe_batch(block, 0, block.count, emit, meter=meter)

            for value in values:
                group_records += 1
                buffered.append(value)
                if len(buffered) >= batch_size:
                    flush()
            flush()
            charged = state["charged"]
        ctx.observe("stage2.group_records", group_records)
        if sanitizer is not None:
            sanitizer.check_index_accounting(index)
        merge_index_filter_stats(ctx, index)
        ctx.release_memory(charged)

    return reducer


def make_bk_rs_map_blocks_reducer(config: JoinConfig) -> Callable:
    """Map-based block processing, R-S: R blocks are loaded one per
    step; the S stream is replicated against every step."""

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        loaded: list[tuple] = []
        charged = 0
        current_step = -1
        try:
            for step, role, rel, rid, true_size, sig, ranks in values:
                if step != current_step:
                    ctx.release_memory(charged)
                    charged = 0
                    loaded = []
                    current_step = step
                projection = (rel, rid, true_size, sig, ranks)
                if role == ROLE_LOAD:
                    charged += ctx.reserve_memory_for(projection, "BK loaded R block")
                    loaded.append(projection)
                    continue
                for r_proj in loaded:
                    ctx.counters.increment(CANDIDATE_PAIRS)
                    similarity = bk_verify(r_proj, projection, config, ctx.counters)
                    if similarity is not None:
                        _write_rs_pair(ctx, r_proj, projection, similarity)
        finally:
            ctx.release_memory(charged)

    return reducer


def make_bk_rs_reduce_blocks_reducer(config: JoinConfig) -> Callable:
    """Reduce-based block processing, R-S: load the first R block,
    spill the other R blocks and the whole S stream to local disk,
    then re-read the S stream once per remaining R block."""

    def reducer(route: int, values: Iterator, ctx: Context) -> None:
        loaded: list[tuple] = []
        charged = 0
        loaded_block = None
        spilled_r: dict[int, list[tuple]] = {}
        spilled_s: list[tuple] = []
        try:
            for block, rel, rid, true_size, sig, ranks in values:
                projection = (rel, rid, true_size, sig, ranks)
                if rel == REL_R:
                    if loaded_block is None:
                        loaded_block = block
                    if block == loaded_block:
                        charged += ctx.reserve_memory_for(
                            projection, "BK loaded R block"
                        )
                        loaded.append(projection)
                    else:
                        spilled_r.setdefault(block, []).append(projection)
                        ctx.counters.increment(
                            SPILL_WRITTEN,
                            projection_spill_bytes(len(ranks), sig is not None),
                        )
                    continue
                for r_proj in loaded:
                    ctx.counters.increment(CANDIDATE_PAIRS)
                    similarity = bk_verify(r_proj, projection, config, ctx.counters)
                    if similarity is not None:
                        _write_rs_pair(ctx, r_proj, projection, similarity)
                if spilled_r:
                    spilled_s.append(projection)
                    ctx.counters.increment(
                        SPILL_WRITTEN,
                        projection_spill_bytes(len(ranks), sig is not None),
                    )
        finally:
            ctx.release_memory(charged)

        for block in sorted(spilled_r):
            loaded = []
            charged = 0
            try:
                for projection in spilled_r[block]:
                    ctx.counters.increment(
                        SPILL_READ,
                        projection_spill_bytes(
                            len(projection[4]), projection[3] is not None
                        ),
                    )
                    charged += ctx.reserve_memory_for(projection, "BK loaded R block")
                    loaded.append(projection)
                for s_proj in spilled_s:
                    ctx.counters.increment(
                        SPILL_READ,
                        projection_spill_bytes(len(s_proj[4]), s_proj[3] is not None),
                    )
                    for r_proj in loaded:
                        ctx.counters.increment(CANDIDATE_PAIRS)
                        similarity = bk_verify(r_proj, s_proj, config, ctx.counters)
                        if similarity is not None:
                            _write_rs_pair(ctx, r_proj, s_proj, similarity)
            finally:
                ctx.release_memory(charged)

    return reducer


# ---------------------------------------------------------------------------
# job assembly
# ---------------------------------------------------------------------------


def stage2_rs_job(
    config: JoinConfig,
    r_file: str,
    s_file: str,
    token_order_file: str,
    output: str,
    num_reducers: int,
    plan: "Stage2Plan | None" = None,
) -> MapReduceJob:
    """Build the single Stage-2 job for an R-S join.

    A split-carrying *plan* switches to the extended ``(route, shard,
    class, relation, length)`` key shape with
    :func:`shard_partition` placement and ``(route, shard)`` grouping;
    the reducers are unchanged — a split shard is just an ordinary R-S
    group holding all of R and a slice of S.
    """
    blocks = config.blocks
    if blocks is not None and config.kernel != "bk":
        raise ValueError(
            "Section 5 block processing applies to the BK kernel; "
            "use kernel='bk' or blocks=None"
        )
    split_mode = plan is not None and bool(plan.splits)
    if split_mode and blocks is not None:
        raise ValueError(
            "hot-group splitting composes with the plain kernels only; "
            "drop blocks or run without splits"
        )
    map_setup, mapper = make_rs_mapper(
        config, blocks, token_order_file, r_file, s_file, plan
    )
    if blocks is None:
        reducer = (
            make_pk_rs_reducer(config)
            if config.kernel == "pk"
            else make_bk_rs_reducer(config)
        )
    elif blocks.strategy == MAP_BASED:
        reducer = make_bk_rs_map_blocks_reducer(config)
    else:
        reducer = make_bk_rs_reduce_blocks_reducer(config)

    if split_mode:
        return MapReduceJob(
            name=f"stage2-{config.kernel}-rs",
            inputs=[r_file, s_file],
            output=output,
            mapper=mapper,
            reducer=reducer,
            num_reducers=num_reducers,
            partition=lambda key: key[0],
            partitioner=lambda key, n: shard_partition(key[0], key[1], n),
            sort_key=lambda key: key,
            group_key=lambda key: (key[0], key[1]),
            broadcast=[token_order_file],
            map_setup=map_setup,
        )

    return MapReduceJob(
        name=f"stage2-{config.kernel}-rs",
        inputs=[r_file, s_file],
        output=output,
        mapper=mapper,
        reducer=reducer,
        num_reducers=num_reducers,
        partition=lambda key: key[0],
        sort_key=lambda key: key,
        group_key=lambda key: key[0],
        broadcast=[token_order_file],
        map_setup=map_setup,
    )
