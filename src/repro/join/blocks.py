"""Section 5 — handling insufficient memory.

When a Stage-2 reducer's candidate list cannot fit in memory even at
the finest routing granularity, the paper sub-partitions each reducer
group into *blocks* small enough to fit, and computes the group's
cross product block-by-block:

* **map-based block processing** — the mapper replicates records so
  that the reducer sees, for each step ``s``: the *load* copy of block
  ``s`` followed by *stream* copies of blocks ``s+1 …``.  The reducer
  keeps only the loaded block in memory.  Replication factor for a
  record in block ``b`` is ``b + 1``.
* **reduce-based block processing** — the mapper sends each record
  once; the reducer loads block 0, streams the rest while spilling
  them to local disk, then re-reads spilled blocks for the remaining
  steps.  No extra network traffic, extra local disk I/O instead.

A record's block is ``stable_hash(rid) % num_blocks`` — the mapper
must know the block count up front, which is why it is part of
:class:`BlockPolicy` (in Hadoop it would be a job configuration
parameter).

For R-S joins only the R partition is sub-partitioned; the S stream is
replicated against every R block (map-based) or spilled once and
re-read per block (reduce-based), exactly as in Section 5 "Handling
R-S Joins".

Counters: ``stage2.spill_bytes_written`` / ``stage2.spill_bytes_read``
account the simulated local-disk traffic of the reduce-based strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.hashing import stable_hash

MAP_BASED = "map"
REDUCE_BASED = "reduce"

#: roles in the map-based interleaved stream (sort order matters:
#: the load copy of block ``s`` precedes the streamed copies in step ``s``).
ROLE_LOAD = 0
ROLE_STREAM = 1

SPILL_WRITTEN = "stage2.spill_bytes_written"
SPILL_READ = "stage2.spill_bytes_read"


def projection_spill_bytes(num_tokens: int, has_signature: bool) -> int:
    """Approximate local-disk bytes of one spilled projection in the
    reduce-based strategy: the token array plus framing, plus one word
    for the bitmap signature when the join ships signatures."""
    return 8 * num_tokens + 32 + (8 if has_signature else 0)


@dataclass(frozen=True)
class BlockPolicy:
    """Sub-partitioning policy for oversized Stage-2 (BK) groups."""

    strategy: str = REDUCE_BASED
    num_blocks: int = 2

    def __post_init__(self) -> None:
        if self.strategy not in (MAP_BASED, REDUCE_BASED):
            raise ValueError(
                f"strategy must be '{MAP_BASED}' or '{REDUCE_BASED}', got {self.strategy!r}"
            )
        if self.num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {self.num_blocks}")

    def block_of(self, rid: int) -> int:
        """Deterministic block assignment of a record."""
        return stable_hash(rid) % self.num_blocks

    def replication_schedule(self, block: int) -> list[tuple[int, int]]:
        """Map-based copies for a record in *block*:
        ``(step, role)`` pairs, in emission order.

        The record is loaded in its own step and streamed in every
        earlier step (Figure 7(a)).
        """
        copies = [(step, ROLE_STREAM) for step in range(block)]
        copies.append((block, ROLE_LOAD))
        return copies

    def rs_stream_schedule(self) -> list[tuple[int, int]]:
        """Map-based copies for an S record in an R-S join: streamed in
        every step (against every R block)."""
        return [(step, ROLE_STREAM) for step in range(self.num_blocks)]
