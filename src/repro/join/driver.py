"""End-to-end set-similarity join drivers.

Chains the three stages on a :class:`SimulatedCluster`:

1. token ordering (BTO/OPTO) → ``<prefix>.tokens``
2. RID-pair generation (BK/PK) → ``<prefix>.ridpairs``
3. record join (BRJ/OPRJ) → ``<prefix>.joined``

``ssjoin_self`` / ``ssjoin_rs`` operate on files already in the
cluster's DFS and return a :class:`JoinReport` with per-stage stats —
the unit the paper's experiments measure.  The module-level
convenience functions :func:`set_similarity_self_join` and
:func:`set_similarity_rs_join` wrap record lists for library users who
do not care about the cluster.

For R-S joins the token ordering is built on R only (per Section 4,
Stage 1 runs "on the relation with fewer records"); pass the smaller
relation as R.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclass_replace

from repro.join.checkpoint import JoinCheckpoint, checkpoint_identity
from repro.join.config import JoinConfig
from repro.join.estimate import sample_prefix_frequencies
from repro.join.memory import (
    MEMORY_ESCALATIONS,
    MEMORY_REPLANS,
    apply_degradations,
    apply_step,
    next_escalation,
    plan_admission,
)
from repro.join.planner import Stage2Plan, plan_stage2
from repro.join.stage1 import stage1_jobs
from repro.join.stage2 import stage2_self_job
from repro.join.stage2_rs import stage2_rs_job
from repro.join.stage3 import stage3_jobs
from repro.mapreduce.cluster import ClusterConfig, SimulatedCluster
from repro.mapreduce.dfs import InMemoryDFS
from repro.mapreduce.faults import RESUME_STAGES_SKIPPED
from repro.mapreduce.pipeline import run_pipeline
from repro.mapreduce.types import (
    InsufficientMemoryError,
    JobStats,
    merge_executor_stats,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import trace_span


@dataclass
class JoinReport:
    """Per-stage statistics of one end-to-end join run."""

    combo: str
    output_file: str
    stage1: JobStats = field(default_factory=JobStats)
    stage2: JobStats = field(default_factory=JobStats)
    stage3: JobStats = field(default_factory=JobStats)
    #: driver-level counters with no owning job:
    #: ``resume.stages_skipped`` (bumped once per stage restored from a
    #: checkpoint instead of re-run), the ``plan.*`` counters of an
    #: adaptive run (chosen routing/groups/batch, splits, sample size)
    #: and the ``memory.*`` admission/replan bookkeeping
    extra_counters: dict[str, int] = field(default_factory=dict)
    #: runtime degradation-ladder steps applied after Stage-2 memory
    #: faults, in order (see :mod:`repro.join.memory`); empty for a run
    #: that never hit a memory fault
    memory_steps: list[str] = field(default_factory=list)

    @property
    def stages(self) -> dict[str, JobStats]:
        return {"stage1": self.stage1, "stage2": self.stage2, "stage3": self.stage3}

    @property
    def total_simulated_s(self) -> float:
        """End-to-end simulated wall-clock (the paper's y-axis)."""
        return sum(stats.simulated_total_s for stats in self.stages.values())

    def stage_times(self) -> dict[str, float]:
        return {
            name: stats.simulated_total_s for name, stats in self.stages.items()
        }

    def counters(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stats in self.stages.values():
            for name, value in stats.counters().items():
                merged[name] = merged.get(name, 0) + value
        for name, value in self.extra_counters.items():
            merged[name] = merged.get(name, 0) + value
        return merged

    def filter_counters(self) -> dict[str, int]:
        """Stage-2 filter-effectiveness tallies: candidates pruned by
        each filter stage (``length``/``bitmap``/``positional``/
        ``suffix``) plus the ``candidates`` examined and ``pairs``
        output.  Zeros for stages that never pruned (e.g. ``bitmap``
        with ``bitmap_filter=False``, ``suffix`` in PK runs where the
        bitmap bound replaces it).  Sanitizer runs (``sanitize=True`` /
        ``REPRO_SANITIZE=1``) add their check/violation tallies under
        ``sanitize_checks`` / ``sanitize_violations``."""
        counters = self.counters()
        return {
            "candidates": counters.get("stage2.candidate_pairs", 0),
            "length": counters.get("stage2.pruned_length", 0),
            "bitmap": counters.get("stage2.pruned_bitmap", 0),
            "positional": counters.get("stage2.pruned_positional", 0),
            "suffix": counters.get("stage2.pruned_suffix", 0),
            "pairs": counters.get("stage2.pairs_output", 0),
            "sanitize_checks": counters.get("sanitize.checks", 0),
            "sanitize_violations": counters.get("sanitize.violations", 0),
        }

    def executor_summary(self) -> dict:
        """Merged physical-execution stats across all three stages (see
        :func:`repro.mapreduce.types.merge_executor_stats`).  All zeros
        when the run used the plain sequential engine."""
        summary: dict = {}
        for stats in self.stages.values():
            merge_executor_stats(
                summary,
                [
                    ex
                    for phase in stats.phases
                    for ex in (phase.map_executor, phase.reduce_executor)
                ],
            )
        return summary

    def metrics(self) -> MetricsRegistry:
        """Unified metrics view of this run: the merged job counters
        (with ``hist.*`` keys decoded back into histograms — reduce
        group sizes, per-partition shuffle bytes, kernel observations),
        per-stage simulated times as gauges, and the executor summary
        as ``executor.*`` gauges.  Deterministic: two identical runs
        snapshot byte-identically."""
        registry = MetricsRegistry()
        registry.merge_counters(self.counters())
        for name, stats in self.stages.items():
            registry.gauge(f"{name}.simulated_s", stats.simulated_total_s)
            registry.gauge(f"{name}.shuffle_bytes", stats.shuffle_bytes)
        registry.gauge("total.simulated_s", self.total_simulated_s)
        summary = self.executor_summary()
        registry.merge_gauges(
            {k: float(v) for k, v in summary.items()},
            prefix="executor.",
        )
        # shuffle-transport health under stable names (gauges, not job
        # counters: physical-execution figures differ across engines by
        # design, while job counters must merge identically everywhere)
        registry.gauge("shuffle.shm_bytes", float(summary.get("shm_bytes", 0)))
        registry.gauge(
            "shuffle.fallback_disk", float(summary.get("shm_fallbacks", 0))
        )
        return registry

    def format_summary(self) -> str:
        """Multi-line human-readable run summary."""
        counters = self.counters()
        lines = [
            f"{self.combo}: {self.total_simulated_s:.1f}s simulated",
        ]
        for name, stats in self.stages.items():
            phases = ", ".join(p.job_name for p in stats.phases) or "-"
            lines.append(
                f"  {name}: {stats.simulated_total_s:7.1f}s  ({phases})"
            )
        lines.append(
            f"  shuffled: {sum(s.shuffle_bytes for s in self.stages.values()):,} bytes"
        )
        pairs = counters.get("stage3.record_pairs_output")
        if pairs is not None:
            lines.append(f"  record pairs: {pairs:,}")
        if "plan.sampled_records" in counters:
            routing = "grouped" if counters.get("plan.routing_grouped") else "individual"
            lines.append(
                f"  plan: routing={routing}, "
                f"groups={counters.get('plan.num_groups', 0) or 'per-token'}, "
                f"batch={counters.get('plan.batch_size', 0) or 'scalar'}, "
                f"splits={counters.get('plan.splits', 0)}"
                f"x{counters.get('plan.split_factor', 0)}, "
                f"sampled={counters.get('plan.sampled_records', 0):,}"
            )
        pruned = self.filter_counters()
        if any(pruned[k] for k in ("length", "bitmap", "positional", "suffix")):
            lines.append(
                "  pruned: "
                + ", ".join(
                    f"{name}={pruned[name]:,}"
                    for name in ("length", "bitmap", "positional", "suffix")
                )
            )
        if self.memory_steps:
            lines.append(
                f"  memory: {len(self.memory_steps)} replan(s): "
                + " -> ".join(self.memory_steps)
            )
        if pruned["sanitize_checks"]:
            lines.append(
                f"  sanitize: {pruned['sanitize_checks']:,} checks, "
                f"{pruned['sanitize_violations']:,} violations"
            )
        return "\n".join(lines)


def _num_reducers(config: JoinConfig, cluster: SimulatedCluster) -> int:
    if config.num_reducers is not None:
        return config.num_reducers
    return cluster.config.reduce_slots


def _adaptive_plan(
    cluster: SimulatedCluster,
    config: JoinConfig,
    reducers: int,
    r_file: str,
    s_file: str | None = None,
) -> tuple[JoinConfig, Stage2Plan | None, dict[str, int]]:
    """Sample, plan and memory-admit hook of the join drivers.

    With ``config.adaptive`` the raw input is sampled *before any job
    runs* (:func:`sample_prefix_frequencies`) and
    :func:`repro.join.planner.plan_stage2` chooses routing, group
    count, batch size and hot-group splits; the returned config carries
    the choices so every stage sees them.  With
    ``config.memory_budget_mb`` the same sample feeds plan-time memory
    admission (:func:`repro.join.memory.plan_admission`), which may
    further degrade the plan until its estimated Stage-2 peak fits the
    budget.  Deterministic: the sample is seeded, so a resumed run
    recomputes the identical plan.  Returns ``(config, None, {})``
    untouched when both features are off.
    """
    if not config.adaptive and config.memory_budget_mb is None:
        return config, None, {}
    r_lines = list(cluster.dfs.read_all(r_file))
    s_lines = list(cluster.dfs.read_all(s_file)) if s_file is not None else None
    sample = sample_prefix_frequencies(r_lines, config, s_lines=s_lines)
    plan = None
    if config.adaptive:
        plan = plan_stage2(sample, config, reducers)
        if plan.splits and (
            config.blocks is not None or config.length_class_width is not None
        ):
            # Section-5 block/length-class routing has its own key shapes;
            # keep the plan's routing/batch choices but run unsplit
            plan = dataclass_replace(plan, splits=())
        config = config.with_options(
            routing=plan.routing,
            num_groups=plan.num_groups,
            batch_size=plan.batch_size,
        )
    config, plan, admission = plan_admission(sample, config, plan)
    return config, plan, admission


def _prepare(cluster: SimulatedCluster, config: JoinConfig, jobs: list) -> None:
    """Register a whole join's jobs with a persistent-pool cluster and
    apply the join-level shuffle transport to its executor.

    ``JoinConfig.shuffle_transport`` wins over whatever the cluster was
    constructed with — the join is the unit benchmarks configure — and
    is a no-op on engines without an executor (sequential, per-phase
    fork)."""
    executor = getattr(cluster, "executor", None)
    if executor is not None and hasattr(executor, "transport"):
        executor.transport = config.shuffle_transport
    prepare = getattr(cluster, "prepare_jobs", None)
    if prepare is not None:
        prepare(jobs)


def _run_stages(
    cluster: SimulatedCluster,
    report: JoinReport,
    tracer,
    checkpoint: JoinCheckpoint | None,
    done: list[str],
    config: JoinConfig,
    plan: Stage2Plan | None,
    build,
    stages: list,
) -> None:
    """Run (or restore) the join's stages in order, surviving Stage-2
    memory faults by degrading the plan.

    *build(config, plan)* returns the join's stage list
    ``[(name, jobs, output_files, span_args), ...]`` for one concrete
    plan; *stages* is the list the caller already built (and whose
    jobs it registered with the persistent pool — re-invoking *build*
    would mint fresh job objects and force a pool respawn per stage).
    *build* is re-invoked only when the plan actually changes.  A stage already recorded in the checkpoint is restored into
    the cluster DFS instead of re-run — its :class:`JobStats` stays
    empty and ``resume.stages_skipped`` is bumped — and every freshly
    run stage is checkpointed before the next one starts.

    A Stage-2 :class:`InsufficientMemoryError` is treated as a *plan
    fault* when ``config.auto_degrade`` is on: the next escalation-
    ladder rung (:func:`repro.join.memory.next_escalation`) is applied,
    the stage jobs are rebuilt and the stage re-runs, bounded by
    ``config.max_replan_retries``.  Each applied step is persisted in
    the checkpoint manifest, so a killed-and-resumed run replays the
    degraded plan instead of rediscovering it rung by rung.  Memory
    faults in other stages (and exhausted ladders) re-raise unchanged.
    """
    steps: list[str] = []
    if checkpoint is not None:
        steps = checkpoint.memory_steps()
        if steps:
            config, plan = apply_degradations(config, plan, steps)
            report.memory_steps.extend(steps)
            report.extra_counters[MEMORY_REPLANS] = len(steps)
            report.extra_counters[MEMORY_ESCALATIONS] = len(steps)
            if tracer is not None:
                tracer.instant(
                    "memory-steps-replayed", "fault", steps=list(steps)
                )
    if steps:
        stages = build(config, plan)
        _prepare(
            cluster, config, [job for _, jobs, _, _ in stages for job in jobs]
        )
    index = 0
    while index < len(stages):
        name, jobs, outputs, span_args = stages[index]
        if checkpoint is not None and name in done:
            with trace_span(tracer, name, "stage", **span_args):
                checkpoint.restore_stage(name, cluster.dfs)
                report.extra_counters[RESUME_STAGES_SKIPPED] = (
                    report.extra_counters.get(RESUME_STAGES_SKIPPED, 0) + 1
                )
                if tracer is not None:
                    tracer.instant(
                        "stage-resumed", "fault", stage=name, files=outputs
                    )
            index += 1
            continue
        try:
            with trace_span(tracer, name, "stage", **span_args):
                setattr(report, name, run_pipeline(cluster, jobs))
        except InsufficientMemoryError as exc:
            step = None
            if name == "stage2" and config.auto_degrade:
                replans = report.extra_counters.get(MEMORY_REPLANS, 0)
                if replans < config.max_replan_retries:
                    step = next_escalation(config)
            if step is None:
                raise
            config, plan = apply_step(config, plan, step)
            report.memory_steps.append(step)
            report.extra_counters[MEMORY_REPLANS] = (
                report.extra_counters.get(MEMORY_REPLANS, 0) + 1
            )
            report.extra_counters[MEMORY_ESCALATIONS] = (
                report.extra_counters.get(MEMORY_ESCALATIONS, 0) + 1
            )
            if tracer is not None:
                tracer.instant(
                    "memory-replan", "fault",
                    stage=name, step=step, error=str(exc),
                )
            if checkpoint is not None:
                checkpoint.save_memory_steps(report.memory_steps)
            stages = build(config, plan)
            _prepare(
                cluster, config,
                [job for _, js, _, _ in stages for job in js],
            )
            continue
        if checkpoint is not None:
            checkpoint.save_stage(name, cluster.dfs, outputs)
        index += 1


def _merge_telemetry(cluster: SimulatedCluster, report: JoinReport) -> None:
    """Fold the cluster's telemetry-hub counters into the report.

    The ``telemetry.*`` keys describe the observation machinery, not
    the workload — differential comparisons strip them (see
    :func:`repro.obs.telemetry.strip_telemetry_counters`).
    """
    hub = getattr(cluster, "telemetry", None)
    if hub is None:
        return
    for name, value in hub.counters().items():
        report.extra_counters[name] = report.extra_counters.get(name, 0) + value


def ssjoin_self(
    cluster: SimulatedCluster,
    records_file: str,
    config: JoinConfig | None = None,
    prefix: str | None = None,
    checkpoint: JoinCheckpoint | None = None,
) -> JoinReport:
    """Run the three-stage self-join on a DFS file.

    Returns a :class:`JoinReport`; the joined record pairs are in
    ``report.output_file`` as ``(line1, line2, similarity)`` records.
    With a :class:`~repro.join.checkpoint.JoinCheckpoint`, completed
    stage outputs are persisted as the join progresses; a checkpoint
    opened with ``resume=True`` restores them and re-runs only the
    remaining stages (identity-checked — see the checkpoint module).
    """
    config = config or JoinConfig()
    prefix = prefix or f"{records_file}.selfjoin"
    reducers = _num_reducers(config, cluster)
    config, plan, admission = _adaptive_plan(
        cluster, config, reducers, records_file
    )

    token_order_file = f"{prefix}.tokens"
    pairs_file = f"{prefix}.ridpairs"
    output_file = f"{prefix}.joined"

    # Every stage's jobs are constructible from DFS file names alone, so
    # build them all before anything runs: clusters with a persistent
    # worker pool then fork exactly once for the whole join.  The
    # builder is re-invoked whenever a memory fault degrades the plan.
    def build(cfg: JoinConfig, pln: Stage2Plan | None) -> list:
        s1 = stage1_jobs(cfg, [records_file], token_order_file, reducers)
        s2 = [
            stage2_self_job(
                cfg, records_file, token_order_file, pairs_file, reducers, pln
            )
        ]
        s3 = stage3_jobs(
            cfg, {records_file: 0}, pairs_file, output_file, reducers,
            is_rs=False,
        )
        return [
            ("stage1", s1, [token_order_file], {"algorithm": cfg.stage1}),
            (
                "stage2", s2, [pairs_file],
                {
                    "kernel": cfg.kernel,
                    "routing": cfg.routing,
                    "num_groups": cfg.num_groups or "per-token",
                    "splits": len(pln.splits) if pln is not None else 0,
                },
            ),
            ("stage3", s3, [output_file], {"algorithm": cfg.stage3}),
        ]

    stages = build(config, plan)
    _prepare(
        cluster, config, [job for _, jobs, _, _ in stages for job in jobs]
    )

    done: list[str] = []
    if checkpoint is not None:
        # identity is the *admitted* (pre-runtime-degradation) config:
        # admission is deterministic, so a resumed run recomputes it and
        # then replays the persisted degradation steps on top
        done = checkpoint.begin(
            checkpoint_identity(
                "self", config, prefix, cluster.dfs, [records_file], reducers
            )
        )

    report = JoinReport(combo=config.combo_name, output_file=output_file)
    if plan is not None:
        report.extra_counters.update(plan.counters())
    report.extra_counters.update(admission)
    tracer = getattr(cluster, "tracer", None)
    with trace_span(
        tracer, f"ssjoin_self:{records_file}", "join",
        combo=config.combo_name, threshold=config.threshold,
        routing=config.routing, kernel=config.kernel,
    ):
        _run_stages(
            cluster, report, tracer, checkpoint, done, config, plan, build,
            stages,
        )
    _merge_telemetry(cluster, report)
    return report


def ssjoin_rs(
    cluster: SimulatedCluster,
    r_file: str,
    s_file: str,
    config: JoinConfig | None = None,
    prefix: str | None = None,
    checkpoint: JoinCheckpoint | None = None,
) -> JoinReport:
    """Run the three-stage R-S join on two DFS files.

    The token ordering is built on ``r_file``; pass the smaller
    relation as R (Section 4).  Output records are
    ``(r_line, s_line, similarity)``.
    """
    config = config or JoinConfig()
    prefix = prefix or f"{r_file}.rsjoin"
    reducers = _num_reducers(config, cluster)
    config, plan, admission = _adaptive_plan(
        cluster, config, reducers, r_file, s_file
    )

    token_order_file = f"{prefix}.tokens"
    pairs_file = f"{prefix}.ridpairs"
    output_file = f"{prefix}.joined"

    def build(cfg: JoinConfig, pln: Stage2Plan | None) -> list:
        s1 = stage1_jobs(cfg, [r_file], token_order_file, reducers)
        s2 = [
            stage2_rs_job(
                cfg, r_file, s_file, token_order_file, pairs_file, reducers,
                pln,
            )
        ]
        s3 = stage3_jobs(
            cfg,
            {r_file: 0, s_file: 1},
            pairs_file,
            output_file,
            reducers,
            is_rs=True,
        )
        return [
            ("stage1", s1, [token_order_file], {"algorithm": cfg.stage1}),
            (
                "stage2", s2, [pairs_file],
                {
                    "kernel": cfg.kernel,
                    "routing": cfg.routing,
                    "num_groups": cfg.num_groups or "per-token",
                    "splits": len(pln.splits) if pln is not None else 0,
                },
            ),
            ("stage3", s3, [output_file], {"algorithm": cfg.stage3}),
        ]

    stages = build(config, plan)
    _prepare(
        cluster, config, [job for _, jobs, _, _ in stages for job in jobs]
    )

    done: list[str] = []
    if checkpoint is not None:
        done = checkpoint.begin(
            checkpoint_identity(
                "rs", config, prefix, cluster.dfs, [r_file, s_file], reducers
            )
        )

    report = JoinReport(combo=config.combo_name, output_file=output_file)
    if plan is not None:
        report.extra_counters.update(plan.counters())
    report.extra_counters.update(admission)
    tracer = getattr(cluster, "tracer", None)
    with trace_span(
        tracer, f"ssjoin_rs:{r_file}:{s_file}", "join",
        combo=config.combo_name, threshold=config.threshold,
        routing=config.routing, kernel=config.kernel,
    ):
        _run_stages(
            cluster, report, tracer, checkpoint, done, config, plan, build,
            stages,
        )
    _merge_telemetry(cluster, report)
    return report


def _default_cluster() -> SimulatedCluster:
    config = ClusterConfig()
    return SimulatedCluster(config, InMemoryDFS(num_nodes=config.num_nodes))


def set_similarity_self_join(
    records: list[str],
    config: JoinConfig | None = None,
    cluster: SimulatedCluster | None = None,
) -> tuple[list[tuple[str, str, float]], JoinReport]:
    """Self-join a list of record lines; the simplest public entry point.

    >>> from repro.join import JoinConfig, set_similarity_self_join
    >>> records = ["1\\ta b c d\\t", "2\\ta b c e\\t", "3\\tx y z w\\t"]
    >>> pairs, report = set_similarity_self_join(
    ...     records, JoinConfig(threshold=0.5, schema=RecordSchema((1,))))
    ... # doctest: +SKIP
    """
    cluster = cluster or _default_cluster()
    cluster.dfs.write("input.records", records)
    report = ssjoin_self(cluster, "input.records", config)
    pairs = sorted(cluster.dfs.read_all(report.output_file))
    return pairs, report


def set_similarity_rs_join(
    r_records: list[str],
    s_records: list[str],
    config: JoinConfig | None = None,
    cluster: SimulatedCluster | None = None,
) -> tuple[list[tuple[str, str, float]], JoinReport]:
    """R-S join two lists of record lines (R should be the smaller)."""
    cluster = cluster or _default_cluster()
    cluster.dfs.write("input.r", r_records)
    cluster.dfs.write("input.s", s_records)
    report = ssjoin_rs(cluster, "input.r", "input.s", config)
    pairs = sorted(cluster.dfs.read_all(report.output_file))
    return pairs, report
