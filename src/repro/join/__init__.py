"""The paper's contribution: 3-stage parallel set-similarity joins.

Stage 1 (token ordering): :mod:`repro.join.stage1` — BTO, OPTO.
Stage 2 (RID-pair generation): :mod:`repro.join.stage2` (self-join BK,
PK), :mod:`repro.join.stage2_rs` (R-S variants).
Stage 3 (record join): :mod:`repro.join.stage3` — BRJ, OPRJ.
Section 5 (insufficient memory): :mod:`repro.join.blocks`.

End-to-end drivers live in :mod:`repro.join.driver`.
"""

from __future__ import annotations

from repro.join.checkpoint import CheckpointMismatchError, JoinCheckpoint
from repro.join.config import JoinConfig
from repro.join.records import (
    RecordSchema,
    join_value,
    make_line,
    parse_fields,
    rid_of,
)
from repro.join.estimate import estimate_self_join_cardinality
from repro.join.planner import recommend_config
from repro.join.driver import (
    JoinReport,
    set_similarity_self_join,
    set_similarity_rs_join,
    ssjoin_self,
    ssjoin_rs,
)

__all__ = [
    "CheckpointMismatchError",
    "JoinCheckpoint",
    "JoinConfig",
    "JoinReport",
    "RecordSchema",
    "estimate_self_join_cardinality",
    "join_value",
    "make_line",
    "parse_fields",
    "recommend_config",
    "rid_of",
    "set_similarity_rs_join",
    "set_similarity_self_join",
    "ssjoin_rs",
    "ssjoin_self",
]
