"""Join-cardinality estimation by sampling.

:func:`repro.join.planner.recommend_config` wants an expected RID-pair
count to decide between BRJ and OPRJ.  When no previous run's counters
are available, estimate it the standard way: join a Bernoulli sample
of the input and scale up — a pair survives a rate-``p`` sample with
probability ``p²``, so ``pairs_estimate = pairs_in_sample / p²``.

The estimator is unbiased but noisy for small samples or very sparse
answers; :func:`estimate_self_join_cardinality` also returns the raw
sample count so callers can judge (``0`` sampled pairs means "too
sparse to estimate at this rate", not "empty join").
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.core.ppjoin import ppjoin_self_join
from repro.core.prefixes import Projection
from repro.core.similarity import SimilarityFunction


def estimate_self_join_cardinality(
    projections: Iterable[Projection],
    sim: SimilarityFunction,
    threshold: float,
    sample_rate: float = 0.1,
    seed: int = 0,
) -> tuple[int, int]:
    """Estimate ``|self-join|`` from a Bernoulli sample.

    Returns ``(estimated_pairs, sampled_pairs)``; the estimate is
    ``sampled_pairs / sample_rate**2`` rounded to an int.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    rng = random.Random(seed)
    sample = [p for p in projections if rng.random() < sample_rate]
    sampled_pairs = len(ppjoin_self_join(sample, sim, threshold))
    estimate = round(sampled_pairs / (sample_rate * sample_rate))
    return estimate, sampled_pairs
