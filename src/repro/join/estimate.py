"""Join-cardinality and skew estimation by sampling.

:func:`repro.join.planner.recommend_config` wants an expected RID-pair
count to decide between BRJ and OPRJ.  When no previous run's counters
are available, estimate it the standard way: join a Bernoulli sample
of the input and scale up — a pair survives a rate-``p`` sample with
probability ``p²``, so ``pairs_estimate = pairs_in_sample / p²``.

The estimator is unbiased but noisy for small samples or very sparse
answers; :func:`estimate_self_join_cardinality` also returns the raw
sample count so callers can judge (``0`` sampled pairs means "too
sparse to estimate at this rate", not "empty join").

:func:`sample_prefix_frequencies` is the plan-time skew probe
(arXiv:1804.05615): it draws a deterministic seeded Bernoulli sample
of the raw input *before any MapReduce job runs*, rebuilds the Stage-1
pipeline in miniature (sample-local ascending-frequency token order,
per-record prefix under that order) and returns how often each token
lands in a routing prefix.  That per-token prefix frequency is — up to
sampling noise — the Stage-2 reduce-input share of the token's routing
key, which is exactly what :func:`repro.join.planner.plan_stage2`
needs to spot the hot groups worth splitting.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.ppjoin import ppjoin_self_join
from repro.core.prefixes import Projection
from repro.core.similarity import SimilarityFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.join.config import JoinConfig


def estimate_self_join_cardinality(
    projections: Iterable[Projection],
    sim: SimilarityFunction,
    threshold: float,
    sample_rate: float = 0.1,
    seed: int = 0,
) -> tuple[int, int]:
    """Estimate ``|self-join|`` from a Bernoulli sample.

    Returns ``(estimated_pairs, sampled_pairs)``; the estimate is
    ``sampled_pairs / sample_rate**2`` rounded to an int.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    rng = random.Random(seed)
    sample = [p for p in projections if rng.random() < sample_rate]
    sampled_pairs = len(ppjoin_self_join(sample, sim, threshold))
    estimate = round(sampled_pairs / (sample_rate * sample_rate))
    return estimate, sampled_pairs


# ---------------------------------------------------------------------------
# plan-time prefix-frequency sampling (skew probe)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrefixSample:
    """Estimated prefix-token frequency distribution of one workload.

    ``prefix_counts[token]`` is how many sampled records route on
    *token* (i.e. carry it in their probing prefix) — the sample-side
    estimate of the token's Stage-2 reduce input.  ``order`` is the
    sample-local global token order (ascending frequency, ties broken
    by token — the same rule :class:`repro.core.ordering.TokenOrder`
    applies), which the planner uses to simulate grouped routing
    (``rank % num_groups``).
    """

    prefix_counts: dict[str, int]
    order: tuple[str, ...]
    #: one tuple of sample-local prefix ranks per sampled record — what
    #: the planner needs to evaluate *grouped* routing, where a
    #: record's shuffle cost is its number of **distinct** prefix-token
    #: groups, not its number of prefix tokens
    prefix_rank_lists: tuple[tuple[int, ...], ...]
    #: the matching *full* sorted rank tuple per sampled record, so the
    #: planner can run the real kernel on a candidate route's members
    #: and price its verify work (quadratic routes split, record-heavy
    #: but filter-pruned routes must not)
    token_rank_lists: tuple[tuple[int, ...], ...] = ()
    records_sampled: int = 0
    records_total: int = 0
    sample_rate: float = 0.1

    @property
    def scale(self) -> float:
        """Sample-to-population scale factor for the counts."""
        if self.records_sampled == 0:
            return 1.0
        return self.records_total / self.records_sampled

    def rank(self, token: str) -> int:
        """Sample-local rank of *token* (``len(order)`` if unseen)."""
        rank = self._ranks.get(token)
        return len(self.order) if rank is None else rank

    @property
    def _ranks(self) -> dict[str, int]:
        ranks = self.__dict__.get("_rank_cache")
        if ranks is None:
            ranks = {token: i for i, token in enumerate(self.order)}
            object.__setattr__(self, "_rank_cache", ranks)
        return ranks


def sample_prefix_frequencies(
    r_lines: Sequence[str],
    config: "JoinConfig",
    s_lines: Sequence[str] | None = None,
    sample_rate: float = 0.1,
    seed: int = 0,
    min_sample: int = 64,
) -> PrefixSample:
    """Estimate the prefix-token frequency distribution from a sample.

    Draws a deterministic Bernoulli sample of the raw input lines (rate
    *sample_rate*, seeded), builds a sample-local ascending-frequency
    token order over the R sample (Stage 1 builds the real order on R
    only), computes each sampled record's probing prefix under that
    order, and counts per-token prefix occurrences.  S-sample tokens
    absent from the R-sample order are dropped, mirroring the R-S
    mapper's ``unknown="drop"`` projection.

    Tiny inputs defeat Bernoulli sampling (a handful of survivors make
    the plan arbitrary), so when fewer than *min_sample* R lines
    survive, the sampler deterministically falls back to a prefix of
    the input instead.  The *effective* rates are reflected in
    ``records_sampled`` / ``records_total``, which is what the planner
    scales by.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    r_lines = list(r_lines)
    s_lines_list = list(s_lines) if s_lines is not None else None
    rng = random.Random(f"prefix-sample:{seed}")
    r_sample = [line for line in r_lines if rng.random() < sample_rate]
    if len(r_sample) < min_sample:
        r_sample = r_lines[:min_sample]
    if s_lines_list is not None:
        s_sample = [line for line in s_lines_list if rng.random() < sample_rate]
        if len(s_sample) < min_sample:
            s_sample = s_lines_list[:min_sample]
    else:
        s_sample = []

    # local import: records <-> estimate would otherwise be tangled at
    # module import time through the join package __init__
    from repro.join.records import join_value

    tokenize = config.tokenizer.tokenize
    schema = config.schema
    sim, threshold = config.sim, config.threshold

    r_token_lists = [tokenize(join_value(line, schema)) for line in r_sample]
    frequencies: Counter[str] = Counter()
    for tokens in r_token_lists:
        frequencies.update(tokens)
    order = tuple(
        token
        for token, _count in sorted(
            frequencies.items(), key=lambda item: (item[1], item[0])
        )
    )
    ranks = {token: i for i, token in enumerate(order)}

    prefix_counts: Counter[str] = Counter()
    prefix_rank_lists: list[tuple[int, ...]] = []
    token_rank_lists: list[tuple[int, ...]] = []

    def count_prefix(tokens: list[str]) -> None:
        known = sorted(ranks[t] for t in tokens if t in ranks)
        n = len(known)
        if n == 0:
            return
        prefix = tuple(known[: sim.prefix_length(n, threshold)])
        prefix_rank_lists.append(prefix)
        token_rank_lists.append(tuple(known))
        for rank in prefix:
            prefix_counts[order[rank]] += 1

    for tokens in r_token_lists:
        count_prefix(tokens)
    for line in s_sample:
        count_prefix(tokenize(join_value(line, schema)))

    sampled = len(r_sample) + len(s_sample)
    total = len(r_lines) + (len(s_lines_list) if s_lines_list is not None else 0)
    return PrefixSample(
        prefix_counts=dict(prefix_counts),
        order=order,
        prefix_rank_lists=tuple(prefix_rank_lists),
        token_rank_lists=tuple(token_rank_lists),
        records_sampled=sampled,
        records_total=max(total, sampled),
        sample_rate=sample_rate,
    )
